"""Hypothesis property: the analyzer never raises on parseable programs.

``analyze_source`` is a gate in front of every ``load()``: whatever the
parser accepts, the analyzer must turn into diagnostics — never an
exception — in every dialect, for every pass, with or without a
placement.  The programs generated here are random rule/fact soups
(including says literals, negation, comparisons, and auth/delegation-ish
predicate names that steer into the new R6xx/R7xx passes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_source
from repro.analysis.cli import build_placement
from repro.analysis.pipeline import parse_dialect
from repro.datalog.errors import ParseError

# Lexer keywords can never be functors/predicates (the parser rejects
# them in every position), so drawing them would only waste examples.
_KEYWORDS = {"me", "true", "false", "agg"}
identifiers = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}",
                            fullmatch=True).filter(
                                lambda name: name not in _KEYWORDS)
# Names that steer generated programs into the authority / delegation /
# cost passes rather than only exercising the generic families.
preds = st.one_of(identifiers,
                  st.sampled_from(["authorize", "mayRead", "grant",
                                   "delegates", "delDepth", "access",
                                   "edge", "reach"]))
var_names = st.from_regex(r"_?[A-Z][a-zA-Z0-9_]{0,4}", fullmatch=True)
terms = st.one_of(var_names,
                  st.integers(min_value=0, max_value=99).map(str),
                  identifiers.map(lambda s: f'"{s}"'))


@st.composite
def atoms(draw):
    pred = draw(preds)
    args = draw(st.lists(terms, min_size=1, max_size=3))
    return f"{pred}({', '.join(args)})"


@st.composite
def literals(draw):
    kind = draw(st.integers(min_value=0, max_value=9))
    if kind == 0:
        return "!" + draw(atoms())
    if kind == 1:
        left, right = draw(var_names), draw(terms)
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        return f"{left} {op} {right}"
    if kind == 2:
        speaker = draw(st.one_of(st.just("_"), var_names,
                                 identifiers.map(lambda s: f'"{s}"')))
        return f"says({speaker},me,{draw(var_names)})"
    return draw(atoms())


@st.composite
def programs(draw):
    statements = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            statements.append(draw(atoms()) + ".")  # a fact
        else:
            head = draw(atoms())
            body = draw(st.lists(literals(), min_size=1, max_size=3))
            statements.append(f"{head} <- {', '.join(body)}.")
    return "\n".join(statements)


def parses(source, dialect):
    try:
        parse_dialect(source, dialect)
        return True
    except ParseError:
        return False


@settings(max_examples=150, deadline=None)
@given(source=programs(),
       dialect=st.sampled_from(["core", "binder", "sendlog"]),
       nodes=st.sampled_from([0, 3]))
def test_analyze_source_never_raises(source, dialect, nodes):
    if dialect == "binder":
        source = source.replace("<-", ":-")
    elif dialect == "sendlog":
        source = "At alice:\n" + source
    if not parses(source, dialect):
        return  # the property quantifies over parser-accepted programs
    placement = build_placement(nodes, [], []) if nodes else None
    diagnostics = analyze_source(source, file="t.dl", dialect=dialect,
                                 placement=placement)
    for diagnostic in diagnostics:
        assert diagnostic.severity in ("error", "warning", "info")
        assert diagnostic.code != "R000"  # it parsed; no parse errors


@settings(max_examples=50, deadline=None)
@given(source=programs())
def test_every_pass_subset_is_total(source):
    if not parses(source, "core"):
        return
    for passes in (("authority",), ("delegation",), ("cost",),
                   ("authority", "delegation", "cost")):
        analyze_source(source, file="t.dl", dialect="core", passes=passes)
