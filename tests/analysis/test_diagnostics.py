"""Diagnostic objects, severities, and the repro-check/v1 JSON schema."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    SCHEMA,
    SEVERITIES,
    Diagnostic,
    dumps_report,
    excerpt,
    failed,
    render_text,
    report_from_json,
    report_to_json,
    summarize,
)
from repro.datalog.terms import Span


def test_code_table_is_well_formed():
    for code, (severity, title) in CODES.items():
        assert code.startswith("R") and len(code) == 4, code
        assert severity in SEVERITIES
        assert title


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown diagnostic code"):
        Diagnostic("R999", "nope")


def test_severity_and_location():
    d = Diagnostic("R001", "unsafe", file="p.dl", span=Span(3, 7))
    assert d.severity == "error"
    assert d.title == "head variable not bound by the body"
    assert d.location() == "p.dl:3:7"
    assert Diagnostic("R302", "lonely").location() == "<input>"


def test_shifted_relocates_into_embedding_file():
    d = Diagnostic("R002", "w", span=Span(2, 5))
    moved = d.shifted(10, "host.py")
    assert moved.span == Span(12, 5)
    assert moved.file == "host.py"
    # zero offset keeps the span; file still updates
    assert d.shifted(0, "x").span == Span(2, 5)
    # no span: only the file moves
    assert Diagnostic("R002", "w").shifted(4, "x").span is None


def test_json_round_trip_per_diagnostic():
    d = Diagnostic("R201", "arity clash", file="p.dl", span=Span(1, 4),
                   rule_label="r1", pred="f")
    data = d.to_json()
    assert data == {"code": "R201", "severity": "error",
                    "message": "arity clash", "file": "p.dl",
                    "line": 1, "column": 4, "rule": "r1", "pred": "f"}
    assert Diagnostic.from_json(data) == d
    bare = Diagnostic("R301", "dead")
    assert Diagnostic.from_json(bare.to_json()) == bare


def test_report_round_trip_and_schema_tag():
    diags = [Diagnostic("R001", "e", span=Span(1, 1)),
             Diagnostic("R202", "w"),
             Diagnostic("R302", "i")]
    report = report_to_json(diags, strict=True)
    assert report["schema"] == SCHEMA == "repro-check/v1"
    assert report["strict"] is True
    assert report["ok"] is False
    assert report["summary"] == {"errors": 1, "warnings": 1, "infos": 1}
    assert set(report_from_json(report)) == set(diags)
    # dumps_report is the same report, serialized
    assert json.loads(dumps_report(diags, strict=True)) == report


def test_report_from_json_rejects_other_schemas():
    with pytest.raises(ValueError, match="unsupported report schema"):
        report_from_json({"schema": "repro-bench/v1", "diagnostics": []})
    with pytest.raises(ValueError, match="unsupported report schema"):
        report_from_json({"diagnostics": []})


def test_failed_strictness():
    infos = [Diagnostic("R301", "i")]
    warns = infos + [Diagnostic("R401", "w")]
    errors = warns + [Diagnostic("R101", "e")]
    assert not failed(infos) and not failed(infos, strict=True)
    assert not failed(warns) and failed(warns, strict=True)
    assert failed(errors) and failed(errors, strict=True)


def test_summarize_counts():
    assert summarize([]) == {"errors": 0, "warnings": 0, "infos": 0}


def test_excerpt_and_render_text():
    source = "p(X) <- q(X).\nr(Y) <- s(Y).\n"
    snippet = excerpt(source, Span(2, 9))
    assert snippet == "  r(Y) <- s(Y).\n          ^"
    assert excerpt(source, Span(99, 1)) is None
    text = render_text(
        [Diagnostic("R001", "boom", file="p.dl", span=Span(1, 1))],
        sources={"p.dl": source})
    assert "p.dl:1:1: error [R001] boom" in text
    assert "  ^" in text
    assert text.endswith("1 error(s), 0 warning(s), 0 info(s)")
