"""Diagnostic objects, severities, and the repro-check/v1 JSON schema."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    SCHEMA,
    SEVERITIES,
    Diagnostic,
    dumps_report,
    excerpt,
    failed,
    partition_suppressed,
    render_text,
    scan_suppressions,
    report_from_json,
    report_to_json,
    summarize,
)
from repro.datalog.terms import Span


def test_code_table_is_well_formed():
    for code, (severity, title) in CODES.items():
        assert code.startswith("R") and len(code) == 4, code
        assert severity in SEVERITIES
        assert title


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown diagnostic code"):
        Diagnostic("R999", "nope")


def test_severity_and_location():
    d = Diagnostic("R001", "unsafe", file="p.dl", span=Span(3, 7))
    assert d.severity == "error"
    assert d.title == "head variable not bound by the body"
    assert d.location() == "p.dl:3:7"
    assert Diagnostic("R302", "lonely").location() == "<input>"


def test_shifted_relocates_into_embedding_file():
    d = Diagnostic("R002", "w", span=Span(2, 5))
    moved = d.shifted(10, "host.py")
    assert moved.span == Span(12, 5)
    assert moved.file == "host.py"
    # zero offset keeps the span; file still updates
    assert d.shifted(0, "x").span == Span(2, 5)
    # no span: only the file moves
    assert Diagnostic("R002", "w").shifted(4, "x").span is None


def test_json_round_trip_per_diagnostic():
    d = Diagnostic("R201", "arity clash", file="p.dl", span=Span(1, 4),
                   rule_label="r1", pred="f")
    data = d.to_json()
    assert data == {"code": "R201", "severity": "error",
                    "message": "arity clash", "file": "p.dl",
                    "line": 1, "column": 4, "rule": "r1", "pred": "f"}
    assert Diagnostic.from_json(data) == d
    bare = Diagnostic("R301", "dead")
    assert Diagnostic.from_json(bare.to_json()) == bare


def test_report_round_trip_and_schema_tag():
    diags = [Diagnostic("R001", "e", span=Span(1, 1)),
             Diagnostic("R202", "w"),
             Diagnostic("R302", "i")]
    report = report_to_json(diags, strict=True)
    assert report["schema"] == SCHEMA == "repro-check/v1"
    assert report["strict"] is True
    assert report["ok"] is False
    assert report["summary"] == {"errors": 1, "warnings": 1, "infos": 1,
                                 "suppressed": 0}
    assert set(report_from_json(report)) == set(diags)
    # dumps_report is the same report, serialized
    assert json.loads(dumps_report(diags, strict=True)) == report


def test_report_from_json_rejects_other_schemas():
    with pytest.raises(ValueError, match="unsupported report schema"):
        report_from_json({"schema": "repro-bench/v1", "diagnostics": []})
    with pytest.raises(ValueError, match="unsupported report schema"):
        report_from_json({"diagnostics": []})


def test_failed_strictness():
    infos = [Diagnostic("R301", "i")]
    warns = infos + [Diagnostic("R401", "w")]
    errors = warns + [Diagnostic("R101", "e")]
    assert not failed(infos) and not failed(infos, strict=True)
    assert not failed(warns) and failed(warns, strict=True)
    assert failed(errors) and failed(errors, strict=True)


def test_summarize_counts():
    assert summarize([]) == {"errors": 0, "warnings": 0, "infos": 0}


def test_excerpt_and_render_text():
    source = "p(X) <- q(X).\nr(Y) <- s(Y).\n"
    snippet = excerpt(source, Span(2, 9))
    assert snippet == "  r(Y) <- s(Y).\n          ^"
    assert excerpt(source, Span(99, 1)) is None
    text = render_text(
        [Diagnostic("R001", "boom", file="p.dl", span=Span(1, 1))],
        sources={"p.dl": source})
    assert "p.dl:1:1: error [R001] boom" in text
    assert "  ^" in text
    assert text.endswith("1 error(s), 0 warning(s), 0 info(s)")


# -- inline suppression pragmas ---------------------------------------------

def test_scan_suppressions_reads_every_comment_style():
    source = ("p(X) <- q(X,Y). %# check: ignore[R302]\n"
              "r(X) <- s(X).  //# check: ignore[R301, R303]\n"
              "plain line\n"
              "t(1).  # check: ignore[]\n")
    assert scan_suppressions(source) == {
        1: frozenset({"R302"}),
        2: frozenset({"R301", "R303"}),
        4: frozenset(),  # empty bracket = every code
    }


def test_partition_suppressed_matches_line_and_code():
    diags = [
        Diagnostic("R302", "singleton", span=Span(1, 1)),
        Diagnostic("R301", "dead", span=Span(1, 5)),   # code not named
        Diagnostic("R302", "other line", span=Span(2, 1)),
        Diagnostic("R301", "no span"),                  # never suppressed
        Diagnostic("R202", "anything", span=Span(3, 1)),
    ]
    suppressions = {1: frozenset({"R302"}), 3: frozenset()}
    kept, suppressed = partition_suppressed(diags, suppressions)
    assert [d.message for d in suppressed] == ["singleton", "anything"]
    assert [d.message for d in kept] == ["dead", "other line", "no span"]


def test_suppressed_findings_are_counted_never_dropped():
    kept = [Diagnostic("R001", "e", span=Span(1, 1))]
    hidden = [Diagnostic("R302", "s", span=Span(2, 1))]
    report = report_to_json(kept, strict=True, suppressed=hidden)
    assert report["summary"]["suppressed"] == 1
    assert [d["code"] for d in report["suppressed"]] == ["R302"]
    text = render_text(kept, suppressed=hidden)
    assert text.endswith("1 error(s), 0 warning(s), 0 info(s), 1 suppressed")
