"""Each pass family over seeded bad programs: exact codes and spans.

The fixtures here are the acceptance contract of ISSUE 7: every family
(R0 safety, R1 stratification, R2 catalog/types, R3 dead code, R4
attribution, R5 placement) must fire with a stable code and a precise
``file:line:col`` span on a program seeded with exactly that defect.
"""

import pytest

from repro.analysis import analyze_source
from repro.cluster.partition import Partitioner


def check(source, **kwargs):
    return analyze_source(source, file="t.dl", **kwargs)


def by_code(diags, code):
    return [d for d in diags if d.code == code]


def only(diags, code):
    found = by_code(diags, code)
    assert len(found) == 1, f"expected one {code}, got {diags}"
    return found[0]


# -- R0: safety -------------------------------------------------------------

def test_r001_unbound_head_variable():
    d = only(check("p(X,Y) <- q(X)."), "R001")
    assert d.severity == "error"
    assert "Y" in d.message and "range-restricted" in d.message
    assert d.location() == "t.dl:1:1"


def test_r002_negated_unbound_is_a_warning():
    d = only(check("r(X) <- s(X), !t(X,Y)."), "R002")
    assert d.severity == "warning"
    assert "Y" in d.message
    assert d.location() == "t.dl:1:16"  # the negated atom itself


def test_r003_unschedulable_comparison():
    d = only(check("p(X) <- q(X), X > Y, r(X)."), "R003")
    assert d.severity == "error"
    assert "unbound variable(s) Y" in d.message


def test_r003_builtin_inputs_unbound():
    d = only(check("p(S) <- q(X), rsasign(R,S,K)."), "R003")
    assert "rsasign" in d.message and "input positions" in d.message


def test_safe_program_has_no_r0xx():
    diags = check('p(X) <- q(X), X > 1.\nq(1). q(2).')
    assert not [d for d in diags if d.code.startswith("R0")]


# -- R1: stratification -----------------------------------------------------

def test_r101_negative_cycle_spelled_out():
    d = only(check("p(X) <- q(X), !r(X).\nr(X) <- p(X).\nq(1)."), "R101")
    assert d.severity == "error"
    # the offending cycle is rendered in the message
    assert "p" in d.message and "r" in d.message
    assert "->" in d.message
    assert "not stratifiable" in d.message


def test_r102_aggregation_cycle():
    source = "t(X,N) <- agg<<N = count(Y)>> e(X,Y), t(X,_).\ne(1,2)."
    d = only(check(source), "R102")
    assert d.severity == "error"


def test_stratified_negation_is_fine():
    diags = check("p(X) <- q(X), !r(X).\nr(1). q(1). q(2).")
    assert not [d for d in diags if d.code.startswith("R1")]


# -- R2: catalog and types --------------------------------------------------

def test_r201_arity_clash():
    d = only(check("f(1).\nf(1,2)."), "R201")
    assert d.severity == "error"
    assert d.pred == "f"
    assert d.location() == "t.dl:2:1"


def test_r202_incompatible_declared_types():
    source = ("p(X) -> int(X).\n"
              "q(X) -> string(X).\n"
              "r(X) <- p(X), q(X).")
    d = only(check(source), "R202")
    assert d.severity == "warning"
    assert "X" in d.message
    assert "int" in d.message and "string" in d.message
    assert d.location() == "t.dl:3:1"


def test_r202_number_abstracts_int():
    source = ("p(X) -> int(X).\n"
              "q(X) -> number(X).\n"
              "r(X) <- p(X), q(X).")
    assert not by_code(check(source), "R202")


# -- R3: dead code ----------------------------------------------------------

def test_r301_underivable_body_predicate():
    d = only(check("p(X) <- q(X), r(X).\nr(1)."), "R301")
    assert d.severity == "info"
    assert d.pred == "q"
    assert d.location() == "t.dl:1:9"


def test_r301_respects_declarations():
    # a declared predicate is a legitimate EDB input
    diags = check("q(X) -> int(X).\np(X) <- q(X).")
    assert not by_code(diags, "R301")


def test_r302_singleton_variable():
    d = only(check("p(X) <- q(X,Y).\nq(1,2)."), "R302")
    assert d.severity == "info"
    assert "Y" in d.message
    # anonymous _ does not count
    assert not by_code(check("p(X) <- q(X,_).\nq(1,2)."), "R302")


def test_r303_contradictory_body():
    d = only(check("p(X) <- q(X), !q(X).\nq(1)."), "R303")
    assert d.severity == "info"
    diags = check("p(X) <- q(X), X < X.\nq(1).")
    assert by_code(diags, "R303")


# -- R4: attribution --------------------------------------------------------

def test_r401_imported_predicate_read_plainly():
    source = ("ok(U,C) <- says(U,me,[| cred(C). |]).\n"
              "grant(C) <- cred(C).")
    d = only(check(source), "R401")
    assert d.severity == "warning"
    assert d.pred == "cred"
    assert "says" in d.message
    assert d.location() == "t.dl:2:13"


def test_r401_not_raised_when_derived_locally():
    source = ("ok(U,C) <- says(U,me,[| cred(C). |]).\n"
              "cred(C) <- localfact(C).\n"
              "grant(C) <- cred(C).\nlocalfact(1).")
    assert not by_code(check(source), "R401")


# -- R5: placement ----------------------------------------------------------

def placement(nodes=2):
    return Partitioner([f"n{i}" for i in range(nodes)])


def test_r501_join_not_colocated():
    part = placement()
    part.hash_partition("a", 0)
    part.hash_partition("b", 0)
    d = only(check("j(X,Y) <- a(X,K), b(Y,Z).", placement=part), "R501")
    assert d.severity == "error"
    assert "co-located" in d.message
    assert d.location() == "t.dl:1:1"


def test_r501_colocated_join_is_clean():
    part = placement()
    part.hash_partition("a", 0)
    part.hash_partition("b", 0)
    diags = check("j(X) <- a(X,K), b(X,Z), K < Z.", placement=part)
    assert not by_code(diags, "R501")


def test_r502_negation_over_exchanged_pred():
    part = placement()
    part.hash_partition("a", 0)
    d = only(check("p(X) <- b(X), !a(X).", placement=part), "R502")
    assert d.severity == "error"
    assert d.pred == "a"
    assert "2-node" in d.message


def test_placement_pass_skipped_without_placement():
    diags = check("p(X) <- b(X), !a(X).")
    assert not [d for d in diags if d.code.startswith("R5")]


def test_single_node_placement_is_trivially_fine():
    part = placement(nodes=1)
    part.hash_partition("a", 0)
    diags = check("p(X) <- b(X), !a(X).", placement=part)
    assert not [d for d in diags if d.code.startswith("R5")]
