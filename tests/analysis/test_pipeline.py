"""Dialect detection, the pass runner, and the gate's exception mapping."""

import pytest

from repro.analysis import (
    DEFAULT_PASSES,
    GATE_PASSES,
    analyze_source,
    detect_dialect,
    raise_for_errors,
    run_passes,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pipeline import AnalysisContext, gate_exception, parse_dialect
from repro.datalog.errors import (
    ClusterError,
    SafetyError,
    StratificationError,
    WorkspaceError,
)
from repro.datalog.terms import Span


def test_detect_dialect():
    assert detect_dialect("p(X) <- q(X).") == "core"
    assert detect_dialect("p(X) :- q(X).") == "binder"
    assert detect_dialect("p(X) <- bob says q(X).") == "binder"
    assert detect_dialect("At S:\nr(S,D) :- n(S,D).") == "sendlog"


def test_parse_dialect_flattens_sendlog_blocks():
    statements = parse_dialect("At S:\nr(S,D) :- n(S,D).\nn(S,S) :- id(S).")
    assert len(statements) == 2
    with pytest.raises(ValueError, match="unknown dialect"):
        parse_dialect("p(1).", "prolog")


def test_parse_error_becomes_r000_with_span():
    diags = analyze_source("p(X <- q(X).", file="bad.dl")
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "R000" and d.severity == "error"
    assert d.file == "bad.dl"
    assert d.span is not None and d.span.line == 1


def test_run_passes_rejects_unknown_pass():
    ctx = AnalysisContext(statements=[])
    with pytest.raises(ValueError, match="unknown analysis pass"):
        run_passes(ctx, passes=["safety", "vibes"])


def test_gate_passes_are_a_subset_of_default():
    assert set(GATE_PASSES) <= set(DEFAULT_PASSES)
    # the gate runs exactly the engine-equivalent families
    assert GATE_PASSES == ("safety", "stratification", "types",
                           "authority", "delegation", "cost")


def test_gate_exception_families():
    assert gate_exception("R001") is SafetyError
    assert gate_exception("R101") is StratificationError
    assert gate_exception("R201") is WorkspaceError
    assert gate_exception("R501") is ClusterError


def test_raise_for_errors_folds_all_errors():
    diags = [
        Diagnostic("R201", "arity", file="p.dl", span=Span(2, 1)),
        Diagnostic("R001", "unsafe", file="p.dl", span=Span(1, 1)),
        Diagnostic("R302", "singleton"),  # info: never raises
    ]
    with pytest.raises(SafetyError) as exc:
        raise_for_errors(diags)
    message = str(exc.value)
    assert "static check rejected the program" in message
    assert "[R001]" in message and "[R201]" in message
    assert "[R302]" not in message


def test_raise_for_errors_quiet_on_warnings():
    raise_for_errors([Diagnostic("R002", "w"), Diagnostic("R301", "i")])


def test_analyze_source_pass_subset():
    # deadcode-only run reports R302 but not the R001 safety error
    diags = analyze_source("p(X,Y) <- q(X).", passes=("deadcode",))
    codes = {d.code for d in diags}
    assert "R302" in codes and "R001" not in codes
