"""The section 9 file system: all three workflows of Figure 3 + security."""

import pytest

from repro.apps.filesystem import AccessDenied, DistributedFileSystem
from repro.datalog.errors import ConstraintViolation


def direct_fs(auth="plaintext"):
    fs = DistributedFileSystem(auth=auth, seed=31)
    fs.add_store("store")
    fs.add_owner("owner", mode="direct")
    fs.add_requester("reader")
    fs.create_file("doc", owner="owner", store="store", data="contents")
    return fs


class TestDirectMode:
    def test_authorized_read(self):
        fs = direct_fs()
        fs.grant("owner", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "contents"

    def test_unauthorized_read_denied(self):
        fs = direct_fs()
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")

    def test_grant_after_denial_allows(self):
        fs = direct_fs()
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")
        fs.grant("owner", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "contents"

    def test_per_file_grants(self):
        fs = direct_fs()
        fs.create_file("other", owner="owner", store="store", data="2nd")
        fs.grant("owner", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "contents"
        with pytest.raises(AccessDenied):
            fs.read("reader", "other", "store")

    def test_read_grant_does_not_allow_write(self):
        fs = direct_fs()
        fs.grant("owner", "reader", "doc", "read")
        with pytest.raises(AccessDenied):
            fs.write("reader", "doc", "store", "vandalized")
        assert fs.read("reader", "doc", "store") == "contents"

    def test_authorized_write_applies(self):
        fs = direct_fs()
        fs.grant("owner", "reader", "doc", "read")
        fs.grant("owner", "reader", "doc", "write")
        fs.write("reader", "doc", "store", "updated")
        assert fs.read("reader", "doc", "store") == "updated"

    def test_hmac_authenticated_workflow(self):
        fs = direct_fs(auth="hmac")
        fs.grant("owner", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "contents"

    def test_file_constraint_f6(self):
        fs = direct_fs()
        store = fs.stores["store"]
        with pytest.raises(ConstraintViolation):
            store.assert_fact("file", ("phantom",))


class TestDelegatedMode:
    def build(self):
        fs = DistributedFileSystem(auth="plaintext", seed=32)
        fs.add_store("store")
        fs.add_owner("owner", mode="delegated")
        fs.add_requester("reader")
        fs.add_manager("mgr")
        fs.owner_trusts_manager("owner", "mgr", delegate=True, depth=0)
        fs.create_file("doc", owner="owner", store="store", data="managed")
        return fs

    def test_manager_decision_grants_access(self):
        fs = self.build()
        fs.manager_grant("mgr", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "managed"

    def test_without_manager_grant_denied(self):
        fs = self.build()
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")

    def test_manager_cannot_redelegate_depth_0(self):
        fs = self.build()
        fs.system.run()
        mgr = fs.managers["mgr"]
        mgr.load("permitted(A,B,C) -> prin(A), string(B), string(C).")
        with pytest.raises(ConstraintViolation):
            mgr.delegate("reader", "permitted")

    def test_self_vouching_rejected(self):
        """A requester saying its own permitted verdict is rejected by the
        mayWrite meta-constraint and audited."""
        fs = self.build()
        fs.requesters["reader"].says(
            "owner", 'permitted("reader","doc","read").')
        report = fs.system.run()
        assert report.rejected >= 1
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")
        assert any(e.kind == "import_rejected"
                   for e in fs.owners["owner"].audit)


class TestThresholdMode:
    def build(self, k=2, managers=3):
        fs = DistributedFileSystem(auth="plaintext", seed=33)
        fs.add_store("store")
        fs.add_owner("owner", mode="threshold", threshold=k)
        fs.add_requester("reader")
        for i in range(managers):
            fs.add_manager(f"m{i}")
            fs.owner_trusts_manager("owner", f"m{i}", delegate=False)
        fs.create_file("doc", owner="owner", store="store", data="classified")
        return fs

    def test_below_threshold_denied(self):
        fs = self.build(k=2)
        fs.manager_grant("m0", "reader", "doc", "read")
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")

    def test_at_threshold_granted(self):
        fs = self.build(k=2)
        fs.manager_grant("m0", "reader", "doc", "read")
        fs.manager_grant("m1", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "classified"

    def test_three_of_three(self):
        fs = self.build(k=3)
        for i in range(2):
            fs.manager_grant(f"m{i}", "reader", "doc", "read")
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")
        fs.manager_grant("m2", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "classified"

    def test_single_manager_cannot_push_permitted(self):
        """In threshold mode a manager's unsolicited `permitted` verdict
        has no grant and is rejected."""
        fs = self.build(k=2)
        fs.managers["m0"].says("owner", 'permitted("reader","doc","read").')
        report = fs.system.run()
        assert report.rejected >= 1
        with pytest.raises(AccessDenied):
            fs.read("reader", "doc", "store")


class TestMultiPrincipalTopologies:
    def test_two_stores_two_owners(self):
        fs = DistributedFileSystem(auth="plaintext", seed=34)
        fs.add_store("s1")
        fs.add_store("s2")
        fs.add_owner("o1", mode="direct")
        fs.add_owner("o2", mode="direct")
        fs.add_requester("r")
        fs.create_file("a", owner="o1", store="s1", data="A")
        fs.create_file("b", owner="o2", store="s2", data="B")
        fs.grant("o1", "r", "a", "read")
        assert fs.read("r", "a", "s1") == "A"
        with pytest.raises(AccessDenied):
            fs.read("r", "b", "s2")
        fs.grant("o2", "r", "b", "read")
        assert fs.read("r", "b", "s2") == "B"

    def test_colocated_store_and_owner(self):
        fs = DistributedFileSystem(auth="plaintext", seed=35)
        system = fs.system
        # store and owner share a physical node (section 3.5 transparency)
        system.create_principal("storeowner-node")  # reserve a node name
        fs.add_store("store")
        fs.add_owner("owner", mode="direct")
        fs.add_requester("reader")
        fs.create_file("doc", owner="owner", store="store", data="x")
        fs.grant("owner", "reader", "doc", "read")
        assert fs.read("reader", "doc", "store") == "x"
