import pytest

from repro.bench import registry


@pytest.fixture
def clean_registry():
    """Run a test against an empty workload registry, restoring after."""
    saved = registry.clear()
    try:
        yield registry
    finally:
        registry.restore(saved)
