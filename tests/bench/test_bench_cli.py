"""The `repro bench` CLI end-to-end: run, artifacts, filter, compare."""

import io
import json

import pytest

from repro.bench import benchmark
from repro.bench.cli import main


@pytest.fixture
def two_workloads(clean_registry):
    @benchmark("alpha_fast", group="alpha", warmup=0, repeats=1,
               quick=[{"n": 1}], full=[{"n": 1}, {"n": 2}])
    def alpha(case, n):
        """A tiny workload."""
        with case.measure():
            sum(range(100 * n))
        case.record(n=n)

    @benchmark("beta_fast", group="beta", warmup=0, repeats=1)
    def beta(case):
        with case.measure():
            sum(range(50))


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, discover=False, out=out)
    return code, out.getvalue()


class TestRun:
    def test_quick_writes_one_artifact_per_workload(self, two_workloads,
                                                    tmp_path):
        code, output = run_cli(["--quick", "--json", str(tmp_path)])
        assert code == 0
        files = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
        assert files == ["BENCH_alpha_fast.json", "BENCH_beta_fast.json"]
        artifact = json.loads((tmp_path / "BENCH_alpha_fast.json").read_text())
        assert artifact["schema"] == "repro-bench/v1"
        assert artifact["mode"] == "quick"
        point_metrics = dict(artifact["points"][0]["metrics"])
        assert point_metrics.pop("peak_mem_bytes") > 0
        assert point_metrics == {"n": 1}
        assert "best=" in output

    def test_full_mode_runs_full_sweep(self, two_workloads, tmp_path):
        code, _ = run_cli(["--full", "--json", str(tmp_path)])
        assert code == 0
        artifact = json.loads((tmp_path / "BENCH_alpha_fast.json").read_text())
        assert [p["params"] for p in artifact["points"]] == \
            [{"n": 1}, {"n": 2}]

    def test_filter_selects_subset(self, two_workloads, tmp_path):
        code, _ = run_cli(["--quick", "--filter", "alpha*",
                           "--json", str(tmp_path)])
        assert code == 0
        assert [p.name for p in tmp_path.glob("BENCH_*.json")] == \
            ["BENCH_alpha_fast.json"]

    def test_no_match_exits_2(self, two_workloads):
        code, output = run_cli(["--quick", "--filter", "nope*"])
        assert code == 2
        assert "no workloads matched" in output

    def test_list(self, two_workloads):
        code, output = run_cli(["--list"])
        assert code == 0
        assert "alpha_fast" in output and "beta_fast" in output
        assert "A tiny workload." in output


class TestCompare:
    def test_identical_artifacts_pass(self, two_workloads, tmp_path):
        run_cli(["--quick", "--json", str(tmp_path / "base")])
        code, output = run_cli(["--compare", str(tmp_path / "base"),
                                "--json", str(tmp_path / "base")])
        assert code == 0
        assert "0 regression(s)" in output

    def test_injected_regression_exits_nonzero(self, two_workloads, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        run_cli(["--quick", "--json", str(base)])
        run_cli(["--quick", "--json", str(cur)])
        # Inject a 10x slowdown into the current artifacts.
        path = cur / "BENCH_alpha_fast.json"
        artifact = json.loads(path.read_text())
        for point in artifact["points"]:
            point["best"] *= 10
            point["timings"] = [t * 10 for t in point["timings"]]
        path.write_text(json.dumps(artifact))
        code, output = run_cli(["--compare", str(base), "--json", str(cur)])
        assert code == 1
        assert "REGRESSION" in output

    def test_run_then_compare(self, two_workloads, tmp_path):
        base = tmp_path / "base"
        run_cli(["--quick", "--json", str(base)])
        # Make the baseline impossibly fast: the fresh run must regress.
        for path in base.glob("BENCH_*.json"):
            artifact = json.loads(path.read_text())
            for point in artifact["points"]:
                point["best"] = 1e-12
            path.write_text(json.dumps(artifact))
        code, output = run_cli(["--quick", "--compare", str(base)])
        assert code == 1
        assert "REGRESSION" in output

    def test_compare_without_current_artifacts_is_usage_error(
            self, two_workloads, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["--compare", str(tmp_path)])

    def test_missing_baseline_reports_error(self, two_workloads, tmp_path):
        code, output = run_cli(["--quick", "--compare",
                                str(tmp_path / "nothing")])
        assert code == 2
        assert "error:" in output


class TestDispatch:
    def test_repro_cli_routes_bench_subcommand(self, two_workloads, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["bench", "--list"]) == 0
        assert "alpha_fast" in capsys.readouterr().out

    def test_standalone_restricts_to_script(self, two_workloads, tmp_path):
        from repro.bench import standalone

        # Workloads in this test file were registered from conftest-driven
        # fixtures defined *in this file*, so its path selects them.
        code = standalone(__file__, ["--list"])
        assert code == 0
        assert standalone("/not/a/benchmark.py", ["--list"]) == 2


class TestVacuousCompare:
    def test_empty_baseline_dir_is_an_error(self, two_workloads, tmp_path):
        cur = tmp_path / "cur"
        empty = tmp_path / "empty"
        empty.mkdir()
        run_cli(["--quick", "--json", str(cur)])
        code, output = run_cli(["--compare", str(empty), "--json", str(cur)])
        assert code == 2
        assert "no comparable points" in output
