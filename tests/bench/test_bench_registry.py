"""Workload registration, selection, and sweep-point handling."""

import pytest

from repro.bench import BenchError, benchmark, get, registered, select


class TestRegistration:
    def test_decorator_registers_and_returns_func(self, clean_registry):
        @benchmark("w1", quick=[{"n": 1}], full=[{"n": 1}, {"n": 10}])
        def w1(case, n):
            """Docstring first line becomes the description."""

        assert w1.workload_name == "w1"
        workload = get("w1")
        assert workload.quick == [{"n": 1}]
        assert workload.full == [{"n": 1}, {"n": 10}]
        assert workload.description.startswith("Docstring first line")
        assert workload.source.endswith("test_bench_registry.py")

    def test_full_defaults_to_quick(self, clean_registry):
        @benchmark("w2", quick=[{"n": 5}])
        def w2(case, n):
            pass

        assert get("w2").full == [{"n": 5}]

    def test_no_sweep_means_one_empty_point(self, clean_registry):
        @benchmark("w3")
        def w3(case):
            pass

        assert get("w3").points("quick") == [{}]
        with pytest.raises(BenchError):
            get("w3").points("paper")

    def test_reregistration_replaces(self, clean_registry):
        @benchmark("w4", quick=[{"n": 1}])
        def first(case, n):
            pass

        @benchmark("w4", quick=[{"n": 2}])
        def second(case, n):
            pass

        assert len(registered()) == 1
        assert get("w4").quick == [{"n": 2}]

    def test_invalid_name_rejected(self, clean_registry):
        with pytest.raises(BenchError):
            benchmark("a/b")

    def test_unknown_name_raises(self, clean_registry):
        with pytest.raises(BenchError):
            get("nope")


class TestSelection:
    @pytest.fixture
    def three(self, clean_registry):
        @benchmark("fig2_auth", group="fig2")
        def a(case):
            pass

        @benchmark("fig2_sweep", group="fig2")
        def b(case):
            pass

        @benchmark("crypto", group="crypto")
        def c(case):
            pass

    def test_select_all_sorted(self, three):
        assert [w.name for w in select()] == \
            ["crypto", "fig2_auth", "fig2_sweep"]

    def test_select_by_name_pattern(self, three):
        assert [w.name for w in select(pattern="fig2_*")] == \
            ["fig2_auth", "fig2_sweep"]

    def test_select_by_group_pattern(self, three):
        assert [w.name for w in select(pattern="crypto")] == ["crypto"]

    def test_select_by_source(self, three):
        assert [w.name for w in select(source=__file__)] == \
            ["crypto", "fig2_auth", "fig2_sweep"]
        assert select(source="/nonexistent.py") == []

    def test_select_by_names(self, three):
        assert [w.name for w in select(names={"crypto", "fig2_sweep"})] == \
            ["crypto", "fig2_sweep"]

    def test_select_by_source_through_symlink(self, three, tmp_path):
        from repro.bench import select

        link = tmp_path / "linked.py"
        link.symlink_to(__file__)
        assert [w.name for w in select(source=str(link))] == \
            ["crypto", "fig2_auth", "fig2_sweep"]
