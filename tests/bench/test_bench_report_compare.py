"""Artifact writing/loading and regression comparison."""

import json

import pytest

from repro.bench import (
    BenchError,
    SCHEMA,
    benchmark,
    compare_artifacts,
    get,
    load_artifact,
    load_artifacts,
    time_workload,
    write_artifact,
)
from repro.bench.compare import format_comparison
from repro.bench.report import make_artifact


def build_artifact(clean, name="w", best=0.001, params=None, metrics=None):
    @benchmark(name, warmup=0, repeats=1, quick=[dict(params or {"n": 1})])
    def w(case, **kw):
        with case.measure():
            pass

    workload = get(name)
    measurement = time_workload(workload, workload.quick[0])
    measurement.timings = [best]
    if metrics:
        measurement.metrics = dict(metrics)
    return make_artifact(workload, "quick", [measurement])


class TestArtifacts:
    def test_roundtrip(self, clean_registry, tmp_path):
        artifact = build_artifact(clean_registry)
        path = write_artifact(tmp_path, artifact)
        assert path.name == "BENCH_w.json"
        loaded = load_artifact(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["name"] == "w"
        assert loaded["mode"] == "quick"
        assert loaded["points"][0]["params"] == {"n": 1}
        assert loaded["points"][0]["best"] == 0.001
        assert "python" in loaded["machine"]
        assert "rev" in loaded["git"]
        assert loaded["created"]

    def test_load_dir(self, clean_registry, tmp_path):
        write_artifact(tmp_path, build_artifact(clean_registry, "a"))
        write_artifact(tmp_path, build_artifact(clean_registry, "b"))
        assert sorted(load_artifacts(tmp_path)) == ["a", "b"]

    def test_schema_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text(json.dumps({"schema": "repro-bench/v99", "name": "x"}))
        with pytest.raises(BenchError):
            load_artifact(bad)

    def test_missing_location_rejected(self, tmp_path):
        with pytest.raises(BenchError):
            load_artifacts(tmp_path / "nope")


class TestCompare:
    def test_no_regression_within_threshold(self, clean_registry):
        base = {"w": build_artifact(clean_registry, best=0.100)}
        cur = {"w": build_artifact(clean_registry, best=0.110)}
        comparison = compare_artifacts(base, cur)
        assert len(comparison.deltas) == 1
        assert comparison.regressions(0.25) == []

    def test_regression_beyond_threshold(self, clean_registry):
        base = {"w": build_artifact(clean_registry, best=0.100)}
        cur = {"w": build_artifact(clean_registry, best=0.200)}
        comparison = compare_artifacts(base, cur)
        regressions = comparison.regressions(0.25)
        assert len(regressions) == 1
        assert regressions[0].ratio == pytest.approx(2.0)
        text = format_comparison(comparison, 0.25)
        assert "REGRESSION" in text
        assert "1 regression(s)" in text

    def test_improvement_is_not_a_regression(self, clean_registry):
        base = {"w": build_artifact(clean_registry, best=0.200)}
        cur = {"w": build_artifact(clean_registry, best=0.050)}
        assert compare_artifacts(base, cur).regressions(0.25) == []

    def test_points_matched_by_params(self, clean_registry):
        base = {"w": build_artifact(clean_registry, params={"n": 1})}
        cur = {"w": build_artifact(clean_registry, params={"n": 2})}
        comparison = compare_artifacts(base, cur)
        assert comparison.deltas == []
        assert comparison.missing_in_current  # the n=1 point disappeared

    def test_missing_artifacts_reported(self, clean_registry):
        base = {"old": build_artifact(clean_registry, "old")}
        cur = {"new": build_artifact(clean_registry, "new")}
        comparison = compare_artifacts(base, cur)
        assert comparison.missing_in_current == ["old"]
        assert comparison.missing_in_baseline == ["new"]

    def test_filter_names(self, clean_registry):
        base = {"a": build_artifact(clean_registry, "a"),
                "b": build_artifact(clean_registry, "b")}
        comparison = compare_artifacts(base, dict(base), filter_names={"a"})
        assert [d.name for d in comparison.deltas] == ["a"]


class TestGatedMetrics:
    """serve_latency points are gated on recorded p99_ms, not just wall
    time: a steady total with a doubled tail must still fail the gate."""

    def serve_artifact(self, clean, best, p99):
        return build_artifact(clean, "serve_latency", best=best,
                              metrics={"p99_ms": p99, "qps": 1000.0})

    def test_metric_delta_emitted_alongside_timing(self, clean_registry):
        base = {"serve_latency": self.serve_artifact(clean_registry,
                                                     0.100, 2.0)}
        cur = {"serve_latency": self.serve_artifact(clean_registry,
                                                    0.100, 2.0)}
        comparison = compare_artifacts(base, cur)
        metrics = sorted(d.metric for d in comparison.deltas)
        assert metrics == ["best", "p99_ms"]
        assert comparison.regressions(0.5) == []

    def test_p99_regression_fails_even_when_timing_holds(self,
                                                         clean_registry):
        base = {"serve_latency": self.serve_artifact(clean_registry,
                                                     0.100, 2.0)}
        cur = {"serve_latency": self.serve_artifact(clean_registry,
                                                    0.100, 4.0)}
        regressions = compare_artifacts(base, cur).regressions(0.5)
        assert [d.metric for d in regressions] == ["p99_ms"]
        assert regressions[0].ratio == pytest.approx(2.0)
        text = format_comparison(compare_artifacts(base, cur), 0.5)
        assert "REGRESSION" in text and "p99_ms" in text

    def test_p99_within_threshold_passes(self, clean_registry):
        base = {"serve_latency": self.serve_artifact(clean_registry,
                                                     0.100, 2.0)}
        cur = {"serve_latency": self.serve_artifact(clean_registry,
                                                    0.100, 2.8)}
        assert compare_artifacts(base, cur).regressions(0.5) == []

    def test_missing_metric_in_baseline_is_skipped(self, clean_registry):
        base = {"serve_latency": build_artifact(clean_registry,
                                                "serve_latency")}
        cur = {"serve_latency": self.serve_artifact(clean_registry,
                                                    0.001, 2.0)}
        comparison = compare_artifacts(base, cur)
        assert [d.metric for d in comparison.deltas] == ["best"]

    def test_ungated_workloads_diff_timing_only(self, clean_registry):
        base = {"w": build_artifact(clean_registry,
                                    metrics={"p99_ms": 1.0})}
        cur = {"w": build_artifact(clean_registry,
                                   metrics={"p99_ms": 99.0})}
        comparison = compare_artifacts(base, cur)
        assert [d.metric for d in comparison.deltas] == ["best"]
