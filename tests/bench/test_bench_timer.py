"""The calibrated timer: warmup/repeat accounting and measured regions."""

import pytest

from repro.bench import BenchError, benchmark, get, time_workload


class TestTimeWorkload:
    def test_warmup_plus_repeats_calls(self, clean_registry):
        calls = []

        @benchmark("w", warmup=2, repeats=3, quick=[{"n": 7}])
        def w(case, n):
            calls.append(n)

        measurement = time_workload(get("w"), {"n": 7})
        # 2 warmup + 3 timed + 1 traced memory pass
        assert calls == [7] * 6
        assert len(measurement.timings) == 3
        assert measurement.warmup == 2
        assert measurement.best == min(measurement.timings)

    def test_measure_region_excludes_setup(self, clean_registry):
        from time import sleep

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            sleep(0.05)                 # setup: must not be timed
            with case.measure():
                sleep(0.002)

        measurement = time_workload(get("w"), {})
        assert measurement.best < 0.045

    def test_whole_call_timed_without_measure(self, clean_registry):
        from time import sleep

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            sleep(0.002)

        measurement = time_workload(get("w"), {})
        assert measurement.best >= 0.002

    def test_metrics_recorded_and_dict_result_merged(self, clean_registry):
        @benchmark("w", warmup=0, repeats=2)
        def w(case):
            with case.measure():
                pass
            case.record(alpha=1)
            return {"beta": 2}

        measurement = time_workload(get("w"), {})
        peak = measurement.metrics.pop("peak_mem_bytes")
        assert peak > 0
        assert measurement.metrics == {"alpha": 1, "beta": 2}
        point = measurement.as_dict()
        assert point["repeats"] == 2
        assert point["metrics"] == {"alpha": 1, "beta": 2}

    def test_engine_stats_captured(self, clean_registry):
        from repro.datalog.database import Database
        from repro.datalog.engine import evaluate
        from repro.datalog.parser import parse_statements
        from repro.datalog.runtime import EvalContext
        from repro.datalog.terms import Rule

        rules = [s for s in parse_statements("p(X) <- e(X).")
                 if isinstance(s, Rule)]

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            db = Database()
            db.add("e", ("a",))
            with case.measure():
                evaluate(rules, db, EvalContext(stats=case.stats),
                         stats=case.stats)

        measurement = time_workload(get("w"), {})
        assert measurement.engine is not None
        assert measurement.engine["new_facts"] == 1
        assert measurement.engine["rule_firings"] == {"p": 1}

    def test_engine_none_for_pure_python_workloads(self, clean_registry):
        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            with case.measure():
                sum(range(10))

        assert time_workload(get("w"), {}).engine is None

    def test_double_measure_rejected(self, clean_registry):
        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            with case.measure():
                pass
            with case.measure():
                pass

        with pytest.raises(BenchError):
            time_workload(get("w"), {})

    def test_zero_repeats_rejected(self, clean_registry):
        @benchmark("w")
        def w(case):
            pass

        with pytest.raises(BenchError):
            time_workload(get("w"), {}, repeats=0)


class TestPeakMemory:
    def test_peak_memory_tracks_allocations(self, clean_registry):
        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            with case.measure():
                blob = bytearray(2_000_000)  # noqa: F841

        measurement = time_workload(get("w"), {})
        assert measurement.metrics["peak_mem_bytes"] >= 2_000_000

    def test_peak_memory_includes_setup_allocations(self, clean_registry):
        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            blob = bytearray(2_000_000)      # setup: untimed, still memory
            with case.measure():
                pass
            del blob

        measurement = time_workload(get("w"), {})
        assert measurement.metrics["peak_mem_bytes"] >= 2_000_000

    def test_peak_memory_skipped_under_active_tracing(self, clean_registry):
        import tracemalloc

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            with case.measure():
                pass

        tracemalloc.start()
        try:
            measurement = time_workload(get("w"), {})
        finally:
            tracemalloc.stop()
        assert "peak_mem_bytes" not in measurement.metrics

    def test_peak_memory_is_json_safe(self, clean_registry):
        import json

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            with case.measure():
                pass

        point = time_workload(get("w"), {}).as_dict()
        assert isinstance(point["metrics"]["peak_mem_bytes"], int)
        json.dumps(point)


class TestWatch:
    def test_watch_records_accumulator_delta(self, clean_registry):
        from repro.datalog.engine import EvalStats

        accumulator = EvalStats()
        accumulator.fire("setup", 100)          # pre-existing setup work

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            case.watch(accumulator)
            with case.measure():
                accumulator.fire("measured", 3)
                accumulator.new_facts += 7

        measurement = time_workload(get("w"), {})
        assert measurement.engine["rule_firings"] == {"measured": 3}
        assert measurement.engine["new_facts"] == 7

    def test_setup_index_lookups_stay_out_of_engine_counters(
            self, clean_registry):
        from repro.datalog.database import Relation

        relation = Relation("e", {(1, 2)})

        @benchmark("w", warmup=0, repeats=1)
        def w(case):
            relation.lookup((0,), (1,))          # untimed setup lookup
            with case.measure():
                pass

        assert time_workload(get("w"), {}).engine is None
