"""The sharded runtime: fixpoint parity, emission semantics, batching."""

import random

import pytest

from repro.cluster import Cluster, ClusterNode, Partitioner
from repro.datalog.errors import ClusterError

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def reach_cluster(n_nodes, vertices=24, degree=2, seed=11, **kwargs):
    """edge sharded by source; reach sharded by its *second* column so
    the recursive join is co-located at owner(Y) and every derived
    reach(X,Z) ships to owner(Z)."""
    names = [f"node{i}" for i in range(n_nodes)]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    cluster = Cluster(names, partitioner=partitioner, **kwargs)
    cluster.load(REACHABILITY)
    rng = random.Random(seed)
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                cluster.assert_fact("edge", (v, t))
    return cluster


class TestFixpointParity:
    def test_sharded_fixpoint_matches_single_node(self):
        single = reach_cluster(1)
        single.run()
        reference = single.tuples("reach")
        assert reference  # non-trivial workload
        for n_nodes in (2, 3, 5):
            cluster = reach_cluster(n_nodes)
            report = cluster.run()
            assert cluster.tuples("reach") == reference
            assert report.messages > 0 and report.bytes > 0

    def test_partitioned_shards_are_disjoint(self):
        cluster = reach_cluster(3)
        cluster.run()
        seen: set = set()
        for node in cluster.nodes.values():
            shard = node.db.tuples("reach")
            assert not (shard & seen)
            seen |= shard

    def test_per_node_derivations_shrink_with_node_count(self):
        loads = {}
        for n_nodes in (1, 2, 4):
            cluster = reach_cluster(n_nodes, vertices=40)
            report = cluster.run()
            loads[n_nodes] = report.max_node_derivations()
        assert loads[2] < loads[1]
        assert loads[4] < loads[2]

    def test_deterministic_across_runs(self):
        first = reach_cluster(3)
        report_a = first.run()
        second = reach_cluster(3)
        report_b = second.run()
        assert first.tuples("reach") == second.tuples("reach")
        assert report_a.messages == report_b.messages
        assert report_a.bytes == report_b.bytes
        assert report_a.rounds == report_b.rounds


class TestEmissionSemantics:
    def test_remote_facts_are_emitted_not_asserted(self):
        cluster = reach_cluster(3)
        report = cluster.run()
        stats = cluster.total_stats()
        assert stats.remote_emissions > 0
        # every emitted fact left its deriving shard
        for node_report in report.per_node:
            node = cluster.node(node_report.name)
            for fact in node.db.tuples("reach"):
                assert cluster.partitioner.owner("reach", fact) == node.name

    def test_replicated_predicate_lands_everywhere(self):
        names = ["n0", "n1", "n2"]
        partitioner = Partitioner(names)
        partitioner.hash_partition("item", column=0)
        partitioner.replicate("alert")
        cluster = Cluster(names, partitioner=partitioner)
        cluster.load("a1: alert(X) <- item(X, \"bad\").")
        for i in range(12):
            cluster.assert_fact("item", (i, "bad" if i % 3 == 0 else "ok"))
        cluster.run()
        expected = {(i,) for i in range(12) if i % 3 == 0}
        for node in cluster.nodes.values():
            assert node.db.tuples("alert") == expected

    def test_local_mode_predicates_never_travel(self):
        names = ["n0", "n1"]
        partitioner = Partitioner(names)
        partitioner.hash_partition("p", column=0)
        cluster = Cluster(names, partitioner=partitioner)
        cluster.load("d: seen(X) <- p(X).")   # seen is local-mode
        for i in range(8):
            cluster.assert_fact("p", (i,))
        report = cluster.run()
        assert report.messages == 0
        union = cluster.tuples("seen")
        assert union == {(i,) for i in range(8)}

    def test_facts_in_program_source_route_by_placement(self):
        names = ["n0", "n1"]
        partitioner = Partitioner(names)
        partitioner.hash_partition("edge", column=0)
        cluster = Cluster(names, partitioner=partitioner)
        cluster.load('edge(1, 2). edge(2, 3). r(X,Y) <- edge(X,Y).')
        cluster.run()
        assert cluster.tuples("r") == {(1, 2), (2, 3)}
        total = sum(len(n.db.tuples("edge")) for n in cluster.nodes.values())
        assert total == 2  # each fact owned exactly once


class TestBatching:
    def test_one_message_per_link_per_round_when_small(self):
        cluster = reach_cluster(2, vertices=10)
        report = cluster.run()
        # 2 nodes -> at most 2 links carrying traffic per round
        assert report.messages <= 2 * report.rounds
        assert report.batched_facts >= report.messages

    def test_size_cap_splits_large_rounds(self):
        roomy = reach_cluster(2, vertices=40)
        r_roomy = roomy.run()
        capped = reach_cluster(2, vertices=40, max_batch_bytes=512)
        r_capped = capped.run()
        assert capped.tuples("reach") == roomy.tuples("reach")
        assert r_capped.messages > r_roomy.messages

    def test_traffic_counters_measure_batches_not_facts(self):
        cluster = reach_cluster(2, vertices=40)
        report = cluster.run()
        assert report.batched_facts > report.messages


class TestGuards:
    def test_nonmonotone_over_exchanged_pred_rejected(self):
        names = ["n0", "n1"]
        partitioner = Partitioner(names)
        partitioner.hash_partition("p", column=0)
        cluster = Cluster(names, partitioner=partitioner)
        with pytest.raises(ClusterError):
            cluster.load("bad(X) <- q(X), !p(X).")

    def test_nonmonotone_over_local_preds_is_fine(self):
        cluster = Cluster(2)
        cluster.load("ok(X) <- q(X), !p(X).")
        cluster.assert_fact("q", (1,), at="node0")
        cluster.assert_fact("q", (2,), at="node0")
        cluster.assert_fact("p", (2,), at="node0")
        cluster.run()
        assert cluster.node("node0").tuples("ok") == {(1,)}

    def test_constraints_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(ClusterError):
            cluster.load("p(X) -> q(X).")

    def test_unknown_node_errors(self):
        cluster = Cluster(2)
        with pytest.raises(ClusterError):
            cluster.assert_fact("p", (1,), at="nowhere")
        with pytest.raises(ClusterError):
            cluster.node("nowhere")

    def test_single_node_cluster_never_messages(self):
        cluster = reach_cluster(1)
        report = cluster.run()
        assert report.messages == 0
        assert report.rounds >= 1


class TestNodeMechanics:
    def test_outbox_dedups_rederived_remote_facts(self):
        partitioner = Partitioner(["a", "b"])
        partitioner.hash_partition("p", column=0)
        node = ClusterNode("a", partitioner)
        remote = next(
            fact for fact in (((i,),) for i in range(64))
            for fact in fact if partitioner.owner("p", fact) == "b"
        )
        remote_row = node.db.interner.intern_row(remote)
        kept = node._emit_rows("p", {remote_row})
        assert kept == set()
        assert node._emit_rows("p", {remote_row}) == set()
        drained = []
        node.drain_outbox(lambda dst, pred, fact: drained.append(
            (dst, pred, fact)))
        assert drained == [("b", "p", remote)]
        # re-offered after drain: still deduplicated
        node._emit_rows("p", {remote_row})
        assert node.outbox == {}

    def test_quiescence_even_when_rederivation_reoffers_facts(self):
        # a diamond: reach(0,3) derivable via two paths on different
        # shards; the run must still converge (no resend loop)
        names = ["n0", "n1"]
        partitioner = Partitioner(names)
        partitioner.hash_partition("edge", column=0)
        partitioner.hash_partition("reach", column=1)
        cluster = Cluster(names, partitioner=partitioner)
        cluster.load(REACHABILITY)
        for edge in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            cluster.assert_fact("edge", edge)
        report = cluster.run(max_rounds=30)
        assert (0, 3) in cluster.tuples("reach")
        assert report.rounds <= 30


class TestRepeatedRuns:
    def test_second_run_reports_only_its_own_rounds(self):
        cluster = reach_cluster(2, vertices=10)
        first = cluster.run()
        cluster.assert_fact("edge", (0, 5))
        second = cluster.run()
        assert len(cluster.ledger.rounds) == first.rounds + second.rounds
        assert second.rounds >= 1


class TestPerRunReports:
    def test_second_run_traffic_fields_are_deltas(self):
        cluster = reach_cluster(2, vertices=10)
        first = cluster.run()
        first_sent = sum(n.sent_facts for n in first.per_node)
        cluster.assert_fact("edge", (0, 5))
        second = cluster.run()
        second_sent = sum(n.sent_facts for n in second.per_node)
        # run 2's report covers run 2 only, like derivations/new_facts —
        # not lifetime totals (node attributes stay cumulative)
        lifetime = sum(n.sent_facts for n in cluster.nodes.values())
        assert first_sent + second_sent == lifetime
        assert second_sent < lifetime
