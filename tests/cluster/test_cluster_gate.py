"""The static-check gate on ``Cluster.load``."""

import pytest

from repro.cluster import Cluster, Partitioner
from repro.datalog.errors import SafetyError, StratificationError


def two_node_cluster():
    names = ["node0", "node1"]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    return Cluster(names, partitioner=partitioner)


def test_unsafe_rule_rejected_before_distribution():
    cluster = two_node_cluster()
    with pytest.raises(SafetyError, match=r"\[R001\]"):
        cluster.load("p(X,Y) <- edge(X,Z).")
    # nothing reached the cluster's rule set
    assert cluster._rules == []


def test_unstratifiable_program_rejected():
    cluster = two_node_cluster()
    with pytest.raises(StratificationError, match=r"\[R101\]"):
        cluster.load("p(X) <- edge(X,_), !r(X).\nr(X) <- p(X).")


def test_clean_program_populates_last_check():
    cluster = two_node_cluster()
    cluster.load("reach(X,Y) <- edge(X,Y).")
    assert cluster.last_check == []  # no findings from the gate passes


def test_warnings_survive_in_last_check():
    cluster = two_node_cluster()
    # local (non-exchanged) predicates, so the negation is distributable;
    # the unbound Y in the negated literal is the seeded R002 warning
    cluster.load("p(X) <- local(X), !q(X,Y).")
    assert [d.code for d in cluster.last_check] == ["R002"]
    assert len(cluster._rules) == 1  # the load still committed
