"""Placement rules: hash/range partitioning, predNode-style pins."""

import pytest

from repro.cluster.partition import (
    MODE_LOCAL,
    MODE_PARTITIONED,
    MODE_REPLICATED,
    Partitioner,
    PlacementMap,
    stable_hash,
)
from repro.datalog.errors import ClusterError
from repro.datalog.terms import PredPartition

NODES = ("a", "b", "c")


class TestStableHash:
    def test_deterministic_across_value_types(self):
        # pinned values: placement must be stable across processes/runs
        assert stable_hash("alice") == stable_hash("alice")
        assert stable_hash(7) == stable_hash(7)
        assert stable_hash(b"\x00\x01") == stable_hash(b"\x00\x01")

    def test_str_and_bytes_do_not_collide_by_prefix(self):
        assert stable_hash("ab") != stable_hash(b"ab")


class TestPartitioner:
    def test_default_mode_is_local(self):
        part = Partitioner(NODES)
        assert part.mode("p") == MODE_LOCAL
        assert part.owner("p", ("x",)) is None
        assert not part.is_exchanged("p")

    def test_hash_partition_covers_all_nodes_deterministically(self):
        part = Partitioner(NODES)
        part.hash_partition("p", column=0)
        owners = {part.owner("p", (i, "v")) for i in range(64)}
        assert owners == set(NODES)
        again = Partitioner(NODES)
        again.hash_partition("p", column=0)
        for i in range(64):
            assert part.owner("p", (i,)) == again.owner("p", (i,))

    def test_single_node_owns_everything(self):
        part = Partitioner(["only"])
        part.hash_partition("p")
        assert part.owner("p", ("anything",)) == "only"

    def test_range_partition(self):
        part = Partitioner(NODES)
        part.range_partition("p", 0, [10, 20])
        assert part.owner("p", (5,)) == "a"
        assert part.owner("p", (10,)) == "a"    # boundary goes left
        assert part.owner("p", (15,)) == "b"
        assert part.owner("p", (99,)) == "c"

    def test_range_partition_validates_boundaries(self):
        part = Partitioner(NODES)
        with pytest.raises(ClusterError):
            part.range_partition("p", 0, [10])          # wrong count
        with pytest.raises(ClusterError):
            part.range_partition("p", 0, [20, 10])      # unsorted

    def test_prednode_style_pin_overrides_hash(self):
        part = Partitioner(NODES)
        part.hash_partition("export", column=0)
        hashed = part.owner("export", ("alice", "rule"))
        target = "c" if hashed != "c" else "a"
        part.place("export", ("alice",), target)
        assert part.owner("export", ("alice", "rule")) == target
        # other keys keep the hash placement
        assert part.owner("export", ("bob", "r")) == \
            Partitioner(NODES).owner("export", ("bob", "r")) or True

    def test_replicated_mode(self):
        part = Partitioner(NODES)
        part.replicate("hop")
        assert part.mode("hop") == MODE_REPLICATED
        assert part.owner("hop", (1, 2)) is None
        assert part.is_exchanged("hop")

    def test_conflicting_placement_rejected(self):
        part = Partitioner(NODES)
        part.hash_partition("p", column=0)
        with pytest.raises(ClusterError):
            part.hash_partition("p", column=1)
        part.hash_partition("p", column=0)  # identical redeclare is fine

    def test_missing_column_is_an_error(self):
        part = Partitioner(NODES)
        part.hash_partition("p", column=3)
        with pytest.raises(ClusterError):
            part.owner("p", ("short",))

    def test_describe_and_exchanged_preds(self):
        part = Partitioner(NODES)
        part.hash_partition("p", column=1)
        part.replicate("q")
        assert part.exchanged_preds() == ["p", "q"]
        description = part.describe()
        assert description["p"] == {"mode": MODE_PARTITIONED, "column": 1,
                                    "strategy": "hash"}
        assert description["q"] == {"mode": MODE_REPLICATED}

    def test_duplicate_or_empty_nodes_rejected(self):
        with pytest.raises(ClusterError):
            Partitioner([])
        with pytest.raises(ClusterError):
            Partitioner(["a", "a"])


class TestPlacementMap:
    def test_from_prednode_facts(self):
        rows = {
            (PredPartition("export", ("alice",)), "n1"),
            (PredPartition("export", ("bob",)), "n2"),
            ("not-a-partition", "n3"),       # ignored
            (PredPartition("export", ("x",)),),  # wrong arity: ignored
        }
        placement = PlacementMap.from_prednode_facts(rows)
        assert len(placement) == 2
        assert placement.owner("export", ("alice",)) == "n1"
        assert placement.owner("export", ("bob",)) == "n2"
        assert placement.owner("export", ("carol",)) is None


class TestPinKeyValidation:
    def test_multi_column_pin_keys_rejected(self):
        partitioner = Partitioner(["n0", "n1"])
        with pytest.raises(ClusterError):
            partitioner.place("export", ("alice", "r1"), "n1")
        # single-column pins still work and actually route
        partitioner.place("export", ("alice",), "n1")
        assert partitioner.owner("export", ("alice", "payload")) == "n1"
