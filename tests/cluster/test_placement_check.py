"""The static join-compatibility checker: machine-checked placement."""

import pytest

from repro.cluster import (
    Cluster,
    Partitioner,
    analyze_join_compatibility,
    check_join_compatibility,
)
from repro.datalog.engine import normalize_rules
from repro.datalog.errors import ClusterError
from repro.datalog.parser import parse_statements
from repro.datalog.terms import Rule

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def engine_rules(source):
    return normalize_rules(
        [s for s in parse_statements(source) if isinstance(s, Rule)])


def mismatched_partitioner(names=("n0", "n1", "n2")):
    """reach on column 0 + edge on column 0: tc1's join keys diverge."""
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=0)
    return partitioner


class TestAnalysis:
    def test_colocated_recursive_join_is_compatible(self):
        partitioner = Partitioner(["n0", "n1", "n2"])
        partitioner.hash_partition("edge", column=0)
        partitioner.hash_partition("reach", column=1)
        assert analyze_join_compatibility(
            engine_rules(REACHABILITY), partitioner) == []

    def test_key_mismatch_is_detected_with_rule_and_column(self):
        issues = analyze_join_compatibility(
            engine_rules(REACHABILITY), mismatched_partitioner())
        assert len(issues) == 1
        issue = issues[0]
        assert issue.rule_label == "tc1"
        assert ("reach", 0) in issue.preds
        assert ("edge", 0) in issue.preds
        assert "column 0" in issue.detail

    def test_single_partitioned_literal_is_always_fine(self):
        partitioner = Partitioner(["n0", "n1"])
        partitioner.hash_partition("item", column=0)
        assert analyze_join_compatibility(
            engine_rules('alert(X) <- item(X, "bad"), config(X).'),
            partitioner) == []

    def test_replicated_and_local_literals_do_not_constrain(self):
        partitioner = Partitioner(["n0", "n1"])
        partitioner.hash_partition("p", column=0)
        partitioner.replicate("ref")
        assert analyze_join_compatibility(
            engine_rules("out(X,Y) <- p(X), ref(Y), scratch(X,Y)."),
            partitioner) == []

    def test_mixed_hash_and_range_schemes_are_incompatible(self):
        partitioner = Partitioner(["n0", "n1", "n2"])
        partitioner.hash_partition("p", column=0)
        partitioner.range_partition("q", 0, [10, 20])
        issues = analyze_join_compatibility(
            engine_rules("j(X) <- p(X), q(X)."), partitioner)
        assert len(issues) == 1
        assert "different placement schemes" in issues[0].detail

    def test_matching_pins_are_compatible_diverging_pins_are_not(self):
        def pinned(pin_q_to):
            partitioner = Partitioner(["n0", "n1"])
            partitioner.hash_partition("p", column=0)
            partitioner.hash_partition("q", column=0)
            partitioner.place("p", ("alice",), "n1")
            partitioner.place("q", ("alice",), pin_q_to)
            return partitioner

        rules = engine_rules("j(X) <- p(X), q(X).")
        assert analyze_join_compatibility(rules, pinned("n1")) == []
        issues = analyze_join_compatibility(rules, pinned("n0"))
        assert len(issues) == 1

    def test_equal_constants_colocate_distinct_variables_do_not(self):
        partitioner = Partitioner(["n0", "n1"])
        partitioner.hash_partition("p", column=0)
        partitioner.hash_partition("q", column=0)
        ok = engine_rules('j(Y) <- p("k"), q("k"), r(Y).')
        # arity-1 p/q with the same constant key: always the same owner
        assert analyze_join_compatibility(ok, partitioner) == []
        bad = engine_rules("j(X,Y) <- p(X), q(Y).")
        assert len(analyze_join_compatibility(bad, partitioner)) == 1

    def test_single_node_cluster_skips_the_analysis(self):
        partitioner = Partitioner(["solo"])
        partitioner.hash_partition("edge", column=0)
        partitioner.hash_partition("reach", column=0)
        assert analyze_join_compatibility(
            engine_rules(REACHABILITY), partitioner) == []


class TestLoadTimeEnforcement:
    def test_load_rejects_mismatched_placement_naming_rule_and_column(self):
        cluster = Cluster(["n0", "n1", "n2"],
                          partitioner=mismatched_partitioner())
        with pytest.raises(ClusterError) as excinfo:
            cluster.load(REACHABILITY)
        message = str(excinfo.value)
        assert "tc1" in message
        assert "column 0" in message

    def test_auto_replicate_repairs_and_reports(self):
        cluster = Cluster(["n0", "n1", "n2"],
                          partitioner=mismatched_partitioner(),
                          on_incompatible="replicate")
        cluster.load(REACHABILITY)
        assert cluster.auto_replicated == ["edge"]
        assert cluster.partitioner.mode("edge") == "replicated"

    def test_auto_replicated_fixpoint_matches_single_node(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]
        single = Cluster(1)
        single.load(REACHABILITY)
        for edge in edges:
            single.assert_fact("edge", edge)
        single.run()
        reference = single.tuples("reach")

        cluster = Cluster(["n0", "n1", "n2"],
                          partitioner=mismatched_partitioner(),
                          on_incompatible="replicate")
        cluster.load(REACHABILITY)
        for edge in edges:
            cluster.assert_fact("edge", edge)
        cluster.run()
        assert cluster.tuples("reach") == reference
        # replication semantics: every node holds every edge
        for node in cluster.nodes.values():
            assert node.db.tuples("edge") == set(edges)

    def test_auto_replicate_rebroadcasts_facts_seeded_before_load(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        cluster = Cluster(["n0", "n1", "n2"],
                          partitioner=mismatched_partitioner(),
                          on_incompatible="replicate")
        for edge in edges:          # routed to single owners pre-load
            cluster.assert_fact("edge", edge)
        cluster.load(REACHABILITY)  # flip to replicated must re-seed
        cluster.run()
        for node in cluster.nodes.values():
            assert node.db.tuples("edge") == set(edges)
        assert cluster.tuples("reach") == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}

    def test_auto_replicate_after_run_broadcasts_derived_facts_too(self):
        """Flipping a predicate that already *derived* facts must
        broadcast those too, not just the asserted EDB — otherwise the
        replicas hold a truncated relation and the next fixpoint
        silently diverges from the single-node result."""
        program = REACHABILITY + ' j(X,Y) <- marker(X), reach(X,Y).'
        edges = [(1, 2), (2, 3), (3, 4)]

        single = Cluster(1)
        single.load(REACHABILITY)
        for edge in edges:
            single.assert_fact("edge", edge)
        single.run()
        single.load('j(X,Y) <- marker(X), reach(X,Y).')
        single.assert_fact("marker", (1,))
        single.run()
        reference = single.tuples("j")
        assert reference == {(1, 2), (1, 3), (1, 4)}

        partitioner = Partitioner(["n0", "n1", "n2"])
        partitioner.hash_partition("edge", column=0)
        partitioner.hash_partition("reach", column=1)
        partitioner.hash_partition("marker", column=0)
        cluster = Cluster(["n0", "n1", "n2"], partitioner=partitioner,
                          on_incompatible="replicate")
        cluster.load(REACHABILITY)
        for edge in edges:
            cluster.assert_fact("edge", edge)
        cluster.run()   # reach facts now *derived*, spread over owners
        # marker(X) ⋈ reach(X,Y) joins col 0 vs col 1: reach flips
        cluster.load('j(X,Y) <- marker(X), reach(X,Y).')
        assert "reach" in cluster.auto_replicated
        cluster.assert_fact("marker", (1,))
        cluster.run()
        assert cluster.tuples("j") == reference
        # replication semantics: every node holds the full reach relation
        full_reach = single.tuples("reach")
        for node in cluster.nodes.values():
            assert node.db.tuples("reach") == full_reach

    def test_rejected_load_leaves_placement_untouched(self):
        """Auto-replication must not commit when a later static check
        rejects the program — a failed load leaves the cluster exactly
        as it was."""
        partitioner = Partitioner(["n0", "n1"])
        partitioner.hash_partition("p", column=0)
        partitioner.hash_partition("q", column=0)
        cluster = Cluster(["n0", "n1"], partitioner=partitioner,
                          on_incompatible="replicate")
        cluster.assert_fact("q", (1,))
        shards_before = {name: node.db.tuples("q")
                         for name, node in cluster.nodes.items()}
        # j forces a replicate-flip of q; bad is then rejected outright
        # (negation over the exchanged predicate p)
        with pytest.raises(ClusterError):
            cluster.load("j(X,Y) <- p(X), q(Y). bad(X) <- w(X), !p(X).")
        assert cluster.partitioner.mode("q") == "partitioned"
        assert cluster.auto_replicated == []
        assert {name: node.db.tuples("q")
                for name, node in cluster.nodes.items()} == shards_before
        # a corrected program still loads against the original placement
        cluster.load("j(X) <- p(X), q(X).")

    def test_rejected_load_seeds_no_facts(self):
        """Facts in a rejected program must not reach any shard."""
        partitioner = Partitioner(["n0", "n1"])
        partitioner.hash_partition("p", column=0)
        partitioner.hash_partition("q", column=0)
        cluster = Cluster(["n0", "n1"], partitioner=partitioner)
        with pytest.raises(ClusterError):
            cluster.load("p(1). p(2). j(X,Y) <- p(X), q(Y).")
        assert cluster.tuples("p") == set()
        for node in cluster.nodes.values():
            assert node.base.get("p", set()) == set()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError):
            check_join_compatibility([], Partitioner(["n0", "n1"]),
                                     on_incompatible="shrug")

    def test_demo_placement_still_loads(self):
        partitioner = Partitioner(["n0", "n1", "n2", "n3"])
        partitioner.hash_partition("edge", column=0)
        partitioner.hash_partition("reach", column=1)
        cluster = Cluster(["n0", "n1", "n2", "n3"], partitioner=partitioner)
        cluster.load(REACHABILITY)  # must not raise
        assert cluster.auto_replicated == []
