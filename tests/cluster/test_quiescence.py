"""Ticket-counting quiescence: the protocol, not the transport."""

import pytest

from repro.cluster.quiescence import TicketLedger


class TestTicketLedger:
    def test_not_quiescent_before_any_round(self):
        assert not TicketLedger().quiescent()

    def test_outstanding_tickets_block_quiescence(self):
        ledger = TicketLedger()
        ledger.issue(0, 2)
        ledger.close_round(0, new_facts=5, clock=1.0)
        assert ledger.outstanding() == 2
        assert not ledger.quiescent()
        ledger.retire(0)
        ledger.retire(0)
        assert ledger.outstanding() == 0
        # still not quiescent: the last closed round was active
        assert not ledger.quiescent()
        ledger.close_round(1, new_facts=0, clock=2.0)
        assert ledger.quiescent()

    def test_new_facts_without_messages_block_quiescence(self):
        ledger = TicketLedger()
        ledger.close_round(0, new_facts=3, clock=0.0)
        assert not ledger.quiescent()
        ledger.close_round(1, new_facts=0, clock=0.0)
        assert ledger.quiescent()

    def test_retiring_more_than_issued_is_loud(self):
        ledger = TicketLedger()
        ledger.issue(0)
        ledger.retire(0)
        with pytest.raises(AssertionError):
            ledger.retire(0)

    def test_convergence_clock_is_last_productive_round(self):
        ledger = TicketLedger()
        ledger.issue(0, 1)
        ledger.close_round(0, new_facts=4, clock=1.0)
        ledger.retire(0)
        ledger.close_round(1, new_facts=2, clock=3.0)
        ledger.close_round(2, new_facts=0, clock=9.0)  # the idle confirm round
        assert ledger.quiescent()
        assert ledger.convergence_clock() == 3.0

    def test_round_records_track_per_round_tickets(self):
        ledger = TicketLedger()
        ledger.issue(0, 3)
        record = ledger.close_round(0, new_facts=1, clock=0.5)
        assert record.issued == 3 and record.retired == 0
        ledger.retire(0, 2)
        record = ledger.close_round(1, new_facts=0, clock=1.5)
        assert record.retired == 2
        assert ledger.outstanding() == 1


class TestRoundVectors:
    """Per-sender round vectors: exactness the global counters lacked."""

    def test_duplicate_detected_while_other_sender_outstanding(self):
        ledger = TicketLedger()
        ledger.issue(0, sender="a")
        ledger.issue(0, sender="b")
        ledger.retire(0, sender="a")
        # a's slot is drained; a duplicate of a's message must be loud
        # even though b's ticket legitimately keeps outstanding() > 0 —
        # a single global counter pair would have masked this.
        with pytest.raises(AssertionError):
            ledger.retire(0, sender="a")

    def test_retire_against_wrong_round_is_loud(self):
        ledger = TicketLedger()
        ledger.issue(3, sender="a")
        with pytest.raises(AssertionError):
            ledger.retire(4, sender="a")

    def test_retire_guarded_ignores_foreign_traffic(self):
        ledger = TicketLedger()
        assert ledger.retire_guarded(0, sender="intruder") is False
        ledger.issue(1, sender="a")
        assert ledger.retire_guarded(1, sender="a") is True
        assert ledger.retire_guarded(1, sender="a") is False
        assert ledger.outstanding() == 0

    def test_retire_any_drains_oldest_outstanding_slot(self):
        ledger = TicketLedger()
        ledger.issue(2, sender="a")
        ledger.issue(5, sender="a")
        assert ledger.retire_any(sender="a") is True
        assert ledger.outstanding_of("a", round_stamp=2) == 0
        assert ledger.outstanding_of("a", round_stamp=5) == 1
        assert ledger.retire_any(sender="a") is True
        assert ledger.retire_any(sender="a") is False   # nothing left
        assert ledger.retire_any(sender="stranger") is False

    def test_outstanding_of_tracks_one_sender(self):
        ledger = TicketLedger()
        ledger.issue(0, count=2, sender="a")
        ledger.issue(1, sender="b")
        assert ledger.outstanding_of("a") == 2
        assert ledger.outstanding_of("b") == 1
        assert ledger.outstanding_of("a", round_stamp=1) == 0
        ledger.retire(0, sender="a")
        assert ledger.outstanding_of("a") == 1


class TestQuiescenceProperty:
    """Hypothesis: quiescence is never declared with a ticket in flight,
    and every finite delivery trace terminates quiescent — under
    arbitrary reordering, delay, and (detected) duplication."""

    import random as _random

    from hypothesis import given, settings
    from hypothesis import strategies as st

    sends_strategy = st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                  st.integers(min_value=0, max_value=6)),
        max_size=40,
    )

    @given(sends=sends_strategy, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_never_quiescent_with_a_ticket_outstanding(self, sends, seed):
        rng = self._random.Random(seed)
        ledger = TicketLedger()
        queue = list(sends)
        rng.shuffle(queue)          # sends happen in arbitrary order
        in_flight: list = []        # delivery delayed arbitrarily long
        clock = 0.0
        while queue or in_flight:
            clock += 1.0
            if queue and (not in_flight or rng.random() < 0.5):
                sender, stamp = queue.pop()
                ledger.issue(stamp, sender=sender)
                in_flight.append((sender, stamp))
            else:
                # deliver any in-flight message, not the oldest —
                # reordering across senders and rounds
                sender, stamp = in_flight.pop(rng.randrange(len(in_flight)))
                ledger.retire(stamp, sender=sender)
            if in_flight:
                assert ledger.outstanding() == len(in_flight)
                assert not ledger.quiescent()
        # the finite trace terminated; an idle closing round completes
        # the proof and quiescence is declared exactly now
        assert ledger.outstanding() == 0
        ledger.close_quiet(clock)
        assert ledger.quiescent()

    @given(sends=sends_strategy.filter(bool),
           seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_duplicated_delivery_is_always_detected(self, sends, seed):
        rng = self._random.Random(seed)
        ledger = TicketLedger()
        for sender, stamp in sends:
            ledger.issue(stamp, sender=sender)
        order = list(sends)
        rng.shuffle(order)
        for sender, stamp in order:
            ledger.retire(stamp, sender=sender)
        duplicate = rng.choice(sends)
        with pytest.raises(AssertionError):
            ledger.retire(duplicate[1], sender=duplicate[0])
        # and the guarded form refuses silently instead
        assert ledger.retire_guarded(duplicate[1],
                                     sender=duplicate[0]) is False
