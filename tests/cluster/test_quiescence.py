"""Ticket-counting quiescence: the protocol, not the transport."""

import pytest

from repro.cluster.quiescence import TicketLedger


class TestTicketLedger:
    def test_not_quiescent_before_any_round(self):
        assert not TicketLedger().quiescent()

    def test_outstanding_tickets_block_quiescence(self):
        ledger = TicketLedger()
        ledger.issue(0, 2)
        ledger.close_round(0, new_facts=5, clock=1.0)
        assert ledger.outstanding() == 2
        assert not ledger.quiescent()
        ledger.retire(0)
        ledger.retire(0)
        assert ledger.outstanding() == 0
        # still not quiescent: the last closed round was active
        assert not ledger.quiescent()
        ledger.close_round(1, new_facts=0, clock=2.0)
        assert ledger.quiescent()

    def test_new_facts_without_messages_block_quiescence(self):
        ledger = TicketLedger()
        ledger.close_round(0, new_facts=3, clock=0.0)
        assert not ledger.quiescent()
        ledger.close_round(1, new_facts=0, clock=0.0)
        assert ledger.quiescent()

    def test_retiring_more_than_issued_is_loud(self):
        ledger = TicketLedger()
        ledger.issue(0)
        ledger.retire(0)
        with pytest.raises(AssertionError):
            ledger.retire(0)

    def test_convergence_clock_is_last_productive_round(self):
        ledger = TicketLedger()
        ledger.issue(0, 1)
        ledger.close_round(0, new_facts=4, clock=1.0)
        ledger.retire(0)
        ledger.close_round(1, new_facts=2, clock=3.0)
        ledger.close_round(2, new_facts=0, clock=9.0)  # the idle confirm round
        assert ledger.quiescent()
        assert ledger.convergence_clock() == 3.0

    def test_round_records_track_per_round_tickets(self):
        ledger = TicketLedger()
        ledger.issue(0, 3)
        record = ledger.close_round(0, new_facts=1, clock=0.5)
        assert record.issued == 3 and record.retired == 0
        ledger.retire(0, 2)
        record = ledger.close_round(1, new_facts=0, clock=1.5)
        assert record.retired == 2
        assert ledger.outstanding() == 1
