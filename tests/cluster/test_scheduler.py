"""The unified ExecutionRuntime: overlapped vs barrier scheduling."""

import random

import pytest

from repro.cluster import Cluster, Partitioner
from repro.datalog.errors import ClusterError
from repro.net.network import SimulatedNetwork

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def reach_cluster(n_nodes, mode="bsp", vertices=24, degree=2, seed=11,
                  network=None, **kwargs):
    names = [f"node{i}" for i in range(n_nodes)]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    cluster = Cluster(names, partitioner=partitioner, mode=mode,
                      network=network, **kwargs)
    cluster.load(REACHABILITY)
    rng = random.Random(seed)
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                cluster.assert_fact("edge", (v, t))
    return cluster


class TestAsyncParity:
    def test_async_fixpoint_matches_bsp_and_single_node(self):
        single = reach_cluster(1)
        single.run()
        reference = single.tuples("reach")
        assert reference
        for n_nodes in (2, 3, 5):
            bsp = reach_cluster(n_nodes, "bsp")
            bsp.run()
            overlapped = reach_cluster(n_nodes, "async")
            overlapped.run()
            assert bsp.tuples("reach") == reference
            assert overlapped.tuples("reach") == reference

    def test_async_shards_stay_disjoint(self):
        cluster = reach_cluster(3, "async")
        cluster.run()
        seen: set = set()
        for node in cluster.nodes.values():
            shard = node.db.tuples("reach")
            assert not (shard & seen)
            seen |= shard

    def test_async_deterministic_across_runs(self):
        first = reach_cluster(3, "async")
        report_a = first.run()
        second = reach_cluster(3, "async")
        report_b = second.run()
        assert first.tuples("reach") == second.tuples("reach")
        assert report_a.depth == report_b.depth
        assert report_a.messages == report_b.messages


class TestOverlap:
    def test_async_depth_never_exceeds_bsp_rounds(self):
        for n_nodes in (2, 3, 5):
            bsp = reach_cluster(n_nodes, "bsp")
            bsp_report = bsp.run()
            overlapped = reach_cluster(n_nodes, "async")
            async_report = overlapped.run()
            assert async_report.depth <= bsp_report.rounds
            assert async_report.rounds == async_report.depth

    def test_async_wins_the_virtual_clock_on_a_slow_link(self):
        """BSP pays the slowest link at every barrier; overlap only on
        the chains that actually cross it."""
        def slow_network():
            network = SimulatedNetwork(default_latency=1.0)
            for i in range(4):
                network.add_node(f"node{i}")
            network.set_latency("node0", "node1", 5.0)
            return network

        bsp = reach_cluster(4, "bsp", network=slow_network())
        bsp_report = bsp.run()
        overlapped = reach_cluster(4, "async", network=slow_network())
        async_report = overlapped.run()
        assert overlapped.tuples("reach") == bsp.tuples("reach")
        assert async_report.convergence_time < bsp_report.convergence_time

    def test_bsp_rounds_equal_causal_depth_plus_quiet_tail(self):
        cluster = reach_cluster(3, "bsp")
        report = cluster.run()
        # a BSP run is its causal depth plus the bootstrap round and the
        # trailing confirm round(s) that carried no messages
        assert report.depth <= report.rounds <= report.depth + 2


class TestQuiescence:
    def test_async_ledger_is_quiescent_after_run(self):
        cluster = reach_cluster(3, "async")
        cluster.run()
        assert cluster.ledger.outstanding() == 0
        assert cluster.ledger.quiescent()

    def test_ledger_slot_bookkeeping_compacts_at_quiescence(self):
        """Long-lived clusters must not grow ledger slots per run: the
        round-vector and per-round issue counts clear once nothing is in
        flight, while the rounds trail and totals survive."""
        cluster = reach_cluster(2, vertices=10)
        for extra in [(0, 5), (1, 6), (2, 7)]:
            cluster.run()
            cluster.assert_fact("edge", extra)
        cluster.run()
        ledger = cluster.ledger
        assert ledger._vector == {}
        assert ledger._per_round_issued == {}
        assert ledger.issued == ledger.retired > 0
        assert len(ledger.rounds) > 0 and ledger.quiescent()

    def test_async_rerun_converges_after_new_fact(self):
        cluster = reach_cluster(2, "async", vertices=10)
        cluster.run()
        before = len(cluster.tuples("reach"))
        cluster.assert_fact("edge", (0, 7))
        cluster.run()
        assert len(cluster.tuples("reach")) >= before
        assert cluster.ledger.quiescent()


class TestSentDedupGeneration:
    """The per-node ``_sent`` set clears at quiescence (bounded memory)."""

    def test_quiescence_clears_the_dedup_set(self):
        cluster = reach_cluster(3)
        report = cluster.run()
        total_sent = sum(n.sent_facts for n in report.per_node)
        assert total_sent > 0
        stats = cluster.total_stats()
        # every queued marker was evicted by the generation clear —
        # exactly one eviction per fact ever queued
        assert stats.sent_dedup_evictions == total_sent
        for node in cluster.nodes.values():
            assert node._sent == set()
            assert node.sent_generation == 1

    def test_rerun_after_clear_still_reaches_the_same_fixpoint(self):
        reference = reach_cluster(3)
        reference.run()
        expected = reference.tuples("reach")
        cluster = reach_cluster(3)
        cluster.run()
        # second run re-derives and (having lost the markers) re-sends;
        # owners deduplicate on assert, the fixpoint is unchanged
        cluster.run()
        assert cluster.tuples("reach") == expected
        assert cluster.total_stats().sent_dedup_evictions >= \
            reference.total_stats().sent_dedup_evictions
        for node in cluster.nodes.values():
            assert node.sent_generation == 2


class TestModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(2, mode="wavefront")

    def test_mode_is_reported(self):
        cluster = reach_cluster(2, "async", vertices=8)
        report = cluster.run()
        assert report.mode == "async"
        assert cluster.mode == "async"
        rendered = report.as_dict()
        assert rendered["mode"] == "async"
        assert rendered["depth"] == report.depth
