"""Cluster evaluation over real sockets: in-process and multiprocess.

Two layers of the socket story:

* the in-process runtime accepts a :class:`SocketNetwork` wherever it
  accepted a :class:`SimulatedNetwork` — ``Cluster(mode="bsp"|"async")``
  runs unchanged, batches crossing loopback TCP instead of the virtual
  queue, and the fixpoint is bit-identical;
* the :mod:`repro.cluster.launch` coordinator puts every node into its
  **own OS process**, exchanging the same wire batches peer-to-peer,
  with the ticket ledger proving quiescence from the control plane —
  and still lands the identical fixpoint.
"""

import random

import pytest

from repro.cluster import Cluster, Partitioner, cluster_spec, launch, spec_nodes
from repro.datalog.errors import ClusterError
from repro.net import SimulatedNetwork, SocketNetwork

PROGRAM = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""

NODES = ["node0", "node1", "node2"]


def placement():
    partitioner = Partitioner(NODES)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    return partitioner


def graph_facts(vertices=20, degree=2, seed=7):
    rng = random.Random(seed)
    facts = []
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                facts.append(("edge", (v, t)))
    return facts


def build_cluster(network, mode):
    cluster = Cluster(NODES, network=network, partitioner=placement(),
                      mode=mode)
    cluster.load(PROGRAM)
    for pred, values in graph_facts():
        cluster.assert_fact(pred, values)
    return cluster


@pytest.fixture(scope="module")
def expected_reach():
    cluster = build_cluster(SimulatedNetwork(), "bsp")
    cluster.run()
    return cluster.tuples("reach")


class TestInProcessSocketCluster:
    @pytest.mark.parametrize("mode", ["bsp", "async"])
    def test_fixpoint_identical_to_simulated(self, mode, expected_reach):
        with SocketNetwork() as network:
            cluster = build_cluster(network, mode)
            report = cluster.run()
            assert cluster.tuples("reach") == expected_reach
            assert report.messages == network.total.messages > 0
            # wall clock replaced the virtual clock in the report
            assert 0.0 < report.virtual_time < 60.0

    def test_quiescence_detected_over_sockets(self, expected_reach):
        with SocketNetwork() as network:
            cluster = build_cluster(network, "bsp")
            cluster.run()
            assert network.pending() == 0
            assert cluster.ledger.quiescent()
            assert cluster.ledger.outstanding() == 0

    def test_second_run_is_already_quiet(self, expected_reach):
        with SocketNetwork() as network:
            cluster = build_cluster(network, "bsp")
            first = cluster.run()
            second = cluster.run()
            assert first.new_facts > 0
            # re-derivations may resend once (the dedup generation reset
            # at quiescence) but nothing new is learned anywhere
            assert second.new_facts == 0
            assert cluster.tuples("reach") == expected_reach


class TestMultiprocessLauncher:
    @pytest.mark.parametrize("mode", ["bsp", "async"])
    def test_three_process_fixpoint_identical(self, mode, expected_reach):
        spec = cluster_spec(
            NODES,
            placement=[["hash", "edge", 0], ["hash", "reach", 1]],
            program=PROGRAM,
            facts=graph_facts(),
            collect=["reach"],
        )
        report = launch(spec, mode=mode, timeout=60)
        assert report.procs == 3
        assert report.relations["reach"] == expected_reach
        assert report.runtime.messages > 0
        assert report.runtime.new_facts == len(expected_reach)
        # every worker contributed a per-node share
        assert [n.name for n in report.per_node] == NODES
        assert sum(n.db_facts for n in report.per_node) > len(expected_reach)
        # received counts only *novel* arrivals (per-sender dedup means
        # two shards can ship the same fact), so it never exceeds sent
        sent = sum(n.sent_facts for n in report.per_node)
        received = sum(n.received_facts for n in report.per_node)
        assert 0 < received <= sent

    def test_spec_nodes_and_bad_mode(self):
        spec = cluster_spec(NODES, placement=[], program=PROGRAM)
        assert spec_nodes(spec) == NODES
        with pytest.raises(ClusterError):
            launch(spec, mode="warp")

    def test_worker_failure_surfaces_as_cluster_error(self):
        # negation over an exchanged predicate is rejected at load() in
        # every worker; the coordinator must surface that, not hang
        spec = cluster_spec(
            NODES,
            placement=[["hash", "edge", 0], ["hash", "reach", 1]],
            program=PROGRAM + 'iso: lonely(X) <- edge(X,Y), !reach(X,Y).\n',
        )
        with pytest.raises(ClusterError, match="worker"):
            launch(spec, timeout=30)
