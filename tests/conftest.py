"""Shared fixtures: small-key systems so crypto-backed tests stay fast."""

from __future__ import annotations

import pytest

from repro import LBTrustSystem
from repro.datalog.database import Database
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule
from repro.datalog.parser import parse_statements


#: RSA modulus size used throughout the test-suite (keygen in ms, and the
#: cost ordering RSA > HMAC > plaintext still holds).
TEST_RSA_BITS = 256


@pytest.fixture
def make_system():
    """Factory for LBTrust systems with test-sized keys."""

    def factory(auth: str = "plaintext", **kwargs) -> LBTrustSystem:
        kwargs.setdefault("rsa_bits", TEST_RSA_BITS)
        kwargs.setdefault("seed", 42)
        return LBTrustSystem(auth=auth, **kwargs)

    return factory


@pytest.fixture
def context() -> EvalContext:
    return EvalContext()


@pytest.fixture
def db() -> Database:
    return Database()


def rules_of(source: str) -> list[Rule]:
    """Parse source and return only the rules (helper for engine tests)."""
    return [s for s in parse_statements(source) if isinstance(s, Rule)]
