"""Authorization meta-constraints (sections 3.3 and 4.1)."""

import pytest

from repro.core.authorization import (
    install_owner_access,
    install_says_authorization,
    record_owner,
)
from repro.core.says import install_says_machinery
from repro.datalog.errors import ConstraintViolation
from repro.datalog.parser import parse_rule
from repro.meta.registry import RuleRegistry
from repro.workspace.workspace import Workspace


def fresh(name="alice"):
    registry = RuleRegistry()
    workspace = Workspace(name, registry=registry)
    install_says_machinery(workspace)
    return registry, workspace


class TestMayRead:
    def test_unauthorized_reader_rejected(self):
        registry, workspace = fresh()
        install_says_authorization(workspace)
        workspace.assert_fact("secret", ("s1",))
        ref = registry.intern(parse_rule("leak(X) <- secret(X)."))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("says", ("mallory", "alice", ref))
        assert workspace.tuples("leak") == set()

    def test_granted_reader_accepted(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, writes=False)
        workspace.assert_fact("secret", ("s1",))
        workspace.assert_fact("mayRead", ("bob", "secret"))
        ref = registry.intern(parse_rule("report(X) <- secret(X)."))
        workspace.assert_fact("says", ("bob", "alice", ref))
        assert workspace.tuples("report") == {("s1",)}

    def test_rule_reading_two_preds_needs_both_grants(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, writes=False)
        workspace.assert_fact("mayRead", ("bob", "a"))
        ref = registry.intern(parse_rule("out(X) <- a(X), b(X)."))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("says", ("bob", "alice", ref))
        workspace.assert_fact("mayRead", ("bob", "b"))
        workspace.assert_fact("says", ("bob", "alice", ref))

    def test_facts_require_no_read_grant(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, writes=False)
        ref = registry.intern(parse_rule('info("x").'))
        workspace.assert_fact("says", ("bob", "alice", ref))
        assert workspace.tuples("info") == {("x",)}

    def test_self_exempt(self):
        registry, workspace = fresh()
        install_says_authorization(workspace)
        workspace.assert_fact("secret", ("s1",))
        ref = registry.intern(parse_rule("mine(X) <- secret(X)."))
        workspace.assert_fact("says", ("alice", "alice", ref))
        assert workspace.tuples("mine") == {("s1",)}


class TestMayWrite:
    def test_unauthorized_writer_rejected(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, reads=False)
        ref = registry.intern(parse_rule('verdict("guilty").'))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("says", ("mallory", "alice", ref))
        assert workspace.tuples("verdict") == set()

    def test_granted_writer_accepted(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, reads=False)
        workspace.assert_fact("mayWrite", ("judge", "verdict"))
        ref = registry.intern(parse_rule('verdict("guilty").'))
        workspace.assert_fact("says", ("judge", "alice", ref))
        assert workspace.tuples("verdict") == {("guilty",)}

    def test_rule_heads_checked(self):
        registry, workspace = fresh()
        install_says_authorization(workspace, reads=False)
        workspace.assert_fact("mayWrite", ("bob", "ok"))
        workspace.assert_fact("base", ("x",))
        allowed = registry.intern(parse_rule("ok(X) <- base(X)."))
        workspace.assert_fact("says", ("bob", "alice", allowed))
        assert workspace.tuples("ok") == {("x",)}
        forbidden = registry.intern(parse_rule("evil(X) <- base(X)."))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("says", ("bob", "alice", forbidden))


class TestOwnerAccess:
    """The section 3.3 worked example, verbatim semantics."""

    def test_owner_without_access_rejected(self):
        registry, workspace = fresh()
        install_owner_access(workspace)
        ref = workspace.add_rule("view(X) <- payroll(X).")
        with pytest.raises(ConstraintViolation):
            record_owner(workspace, ref, "intern")

    def test_owner_with_access_accepted(self):
        registry, workspace = fresh()
        install_owner_access(workspace)
        workspace.assert_fact("access", ("cfo", "payroll", "read"))
        ref = workspace.add_rule("view(X) <- payroll(X).")
        record_owner(workspace, ref, "cfo")
        assert ("cfo", ref) in workspace.tuples("owner")

    def test_fact_rules_unconstrained(self):
        registry, workspace = fresh()
        install_owner_access(workspace)
        ref = workspace.add_rule('payroll("row").')
        record_owner(workspace, ref, "intern")  # facts read nothing
