"""Confidentiality and integrity (section 4.1.3): encrypted rules.

The paper: LBTrust supports "confidentiality, ensuring rules cannot be
interpreted by unauthorized principals in a distributed setting, and
integrity" via built-in predicates.  These tests run the encryptrule /
decryptrule / checksum builtins through full declarative pipelines.
"""

from repro.crypto.keystore import shared_secret_id


def paired(make_system, *names):
    system = make_system("hmac")   # hmac provisioning creates shared secrets
    return system, [system.create_principal(n) for n in names]


class TestEncryptedRules:
    def test_encrypted_payload_roundtrip(self, make_system):
        """Alice ships an encrypted rule inside a plaintext envelope; only
        key-holders can turn the ciphertext back into an active rule."""
        system, (alice, bob) = paired(make_system, "alice", "bob")
        key_id = shared_secret_id("alice", "bob")

        # alice wraps the secret rule: envelope(C) carries ciphertext only
        alice.load(f'''
            wrapped(C) <- payload(R), encryptrule(R,"{key_id}",C).
            says(me,"bob",[| envelope(C). |]) <- wrapped(C).
        ''')
        alice.workspace.load('payload([| secretfact("x42"). |]).')

        # bob unwraps and activates
        bob.load(f'''
            unwrapped(R) <- envelope(C), decryptrule(C,"{key_id}",R).
            active(R) <- unwrapped(R).
        ''')
        system.run()
        assert bob.tuples("secretfact") == {("x42",)}

    def test_non_keyholder_cannot_unwrap(self, make_system):
        system, (alice, bob, eve) = paired(make_system, "alice", "bob", "eve")
        key_id = shared_secret_id("alice", "bob")
        alice.load(f'''
            wrapped(C) <- payload(R), encryptrule(R,"{key_id}",C).
            says(me,"bob",[| envelope(C). |]) <- wrapped(C).
            says(me,"eve",[| envelope(C). |]) <- wrapped(C).
        ''')
        alice.workspace.load('payload([| secretfact("x42"). |]).')
        unwrap = '''
            unwrapped(R) <- envelope(C), decryptrule(C,"{key}",R).
            active(R) <- unwrapped(R).
        '''
        bob.load(unwrap.format(key=key_id))
        # eve tries with her own (different) alice-eve secret
        eve.load(unwrap.format(key=shared_secret_id("alice", "eve")))
        system.run()
        assert bob.tuples("secretfact") == {("x42",)}
        # eve received the ciphertext but cannot interpret it
        assert eve.tuples("envelope")
        assert eve.tuples("secretfact") == set()

    def test_ciphertext_differs_from_plaintext(self, make_system):
        system, (alice, bob) = paired(make_system, "alice", "bob")
        key_id = shared_secret_id("alice", "bob")
        alice.load(f'wrapped(C) <- payload(R), encryptrule(R,"{key_id}",C).')
        alice.workspace.load('payload([| secretfact("x42"). |]).')
        ((ciphertext,),) = alice.tuples("wrapped")
        assert "secretfact" not in ciphertext
        assert "x42" not in ciphertext


class TestIntegrity:
    def test_checksummed_transfer(self, make_system):
        """A checksum column detects accidental corruption in transit."""
        system, (alice, bob) = paired(make_system, "alice", "bob")
        alice.load('''
            says(me,"bob",[| stamped(R,C). |]) <-
                outgoing(R), checksum(R,C).
        ''')
        alice.workspace.load('outgoing([| data("payload"). |]).')
        bob.load('''
            verified(R) <- stamped(R,C), checksum(R,C2), C = C2.
            corrupted(R) <- stamped(R,C), checksum(R,C2), C != C2.
        ''')
        system.run()
        assert len(bob.tuples("verified")) == 1
        assert bob.tuples("corrupted") == set()

    def test_corruption_detected(self, make_system):
        system, (alice, bob) = paired(make_system, "alice", "bob")
        ref = alice.intern('data("payload").')
        # a wrong checksum arrives (simulated corruption)
        bob.load('''
            verified(R) <- stamped(R,C), checksum(R,C2), C = C2.
            corrupted(R) <- stamped(R,C), checksum(R,C2), C != C2.
        ''')
        bob.assert_fact("stamped", (ref, 12345))
        assert bob.tuples("corrupted") == {(ref,)}
        assert bob.tuples("verified") == set()
