"""Delegation (section 4.2): speaks-for, del1, depth, width, thresholds."""

import pytest

from repro.core.delegation import (
    install_delegation,
    install_speaks_for,
    install_threshold,
    install_weighted_threshold,
    install_width_restriction,
)
from repro.datalog.errors import ConstraintViolation
from repro.datalog.parser import parse_rule
from repro.meta.registry import RuleRegistry
from repro.workspace.workspace import Workspace


def fresh(name="alice"):
    registry = RuleRegistry()
    return registry, Workspace(name, registry=registry)


class TestSpeaksFor:
    def test_sf0_activates_everything_from_one_principal(self):
        registry, workspace = fresh()
        install_speaks_for(workspace, "bob")
        ref = registry.intern(parse_rule('claim("x").'))
        workspace.assert_fact("says", ("bob", "alice", ref))
        assert workspace.tuples("claim") == {("x",)}

    def test_sf0_ignores_other_speakers(self):
        registry, workspace = fresh()
        install_speaks_for(workspace, "bob")
        ref = registry.intern(parse_rule('claim("x").'))
        workspace.assert_fact("says", ("carol", "alice", ref))
        assert workspace.tuples("claim") == set()


class TestDel1:
    def test_delegated_predicate_activates(self):
        registry, workspace = fresh()
        install_delegation(workspace)
        workspace.load('creditOK(C) -> string(C). prin("alice"). prin("bob"). prin("carol").')
        workspace.assert_fact("delegates", ("alice", "bob", "creditOK"))
        ok = registry.intern(parse_rule('creditOK("acme").'))
        other = registry.intern(parse_rule('gossip("x").'))
        workspace.assert_fact("says", ("bob", "alice", ok))
        workspace.assert_fact("says", ("bob", "alice", other))
        assert workspace.tuples("creditOK") == {("acme",)}
        assert workspace.tuples("gossip") == set()

    def test_delegation_is_per_principal(self):
        registry, workspace = fresh()
        install_delegation(workspace)
        workspace.load('creditOK(C) -> string(C). prin("alice"). prin("bob"). prin("carol").')
        workspace.assert_fact("delegates", ("alice", "bob", "creditOK"))
        ok = registry.intern(parse_rule('creditOK("acme").'))
        workspace.assert_fact("says", ("carol", "alice", ok))
        assert workspace.tuples("creditOK") == set()

    def test_delegated_rules_not_just_facts(self):
        registry, workspace = fresh()
        install_delegation(workspace)
        workspace.load('creditOK(C) -> string(C). prin("alice"). prin("bob"). prin("carol").')
        workspace.assert_fact("delegates", ("alice", "bob", "creditOK"))
        workspace.assert_fact("rating", ("acme", 800))
        conditional = registry.intern(
            parse_rule("creditOK(C) <- rating(C,N), N >= 700."))
        workspace.assert_fact("says", ("bob", "alice", conditional))
        assert workspace.tuples("creditOK") == {("acme",)}

    def test_del0_requires_known_predicate(self):
        registry, workspace = fresh()
        install_delegation(workspace)
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("delegates", ("alice", "bob", "nonexistent"))


class TestDepthRestrictions:
    def test_depth_zero_blocks_redelegation(self, make_system):
        system = make_system("plaintext", delegation=True)
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        for principal in (alice, bob, carol):
            principal.load("perm(A) -> prin(A).")
        alice.delegate(bob, "perm", depth=0)
        system.run()
        assert ("alice", "bob", "perm", 0) in bob.tuples("inferredDelDepth")
        with pytest.raises(ConstraintViolation):
            bob.delegate(carol, "perm")

    def test_depth_one_allows_exactly_one_hop(self, make_system):
        system = make_system("plaintext", delegation=True)
        names = ["a", "b", "c", "d"]
        principals = {n: system.create_principal(n) for n in names}
        for principal in principals.values():
            principal.load("perm(A) -> prin(A).")
        principals["a"].delegate("b", "perm", depth=1)
        system.run()
        principals["b"].delegate("c", "perm")
        system.run()
        assert ("b", "c", "perm", 0) in principals["c"].tuples("inferredDelDepth")
        with pytest.raises(ConstraintViolation):
            principals["c"].delegate("d", "perm")

    def test_late_restriction_detected_locally(self, make_system):
        """Section 4.2.1's 'non-conforming delegation' scenario: the
        violation surfaces at the offender, upstream stays unaware."""
        system = make_system("plaintext", delegation=True)
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        for principal in (alice, bob, carol):
            principal.load("perm(A) -> prin(A).")
        bob.delegate(carol, "perm")        # pre-existing delegation
        system.run()
        alice.delegate(bob, "perm", depth=0)   # restriction arrives later
        report = system.run()
        assert report.rejected >= 1
        assert any(e.kind == "import_rejected" for e in bob.audit)
        # upstream (alice) has no violation recorded
        assert not any(e.kind == "constraint_violation" for e in alice.audit)


class TestWidthRestrictions:
    def test_width_allows_listed_principals(self):
        registry, workspace = fresh()
        install_width_restriction(workspace)
        workspace.load("perm(A) -> string(A). "
                       'prin("alice"). prin("bob"). prin("eve").')
        workspace.assert_fact("delWidthOn", ("alice", "perm"))
        workspace.assert_fact("delWidth", ("alice", "bob", "perm"))
        workspace.assert_fact("delegates", ("alice", "bob", "perm"))

    def test_width_blocks_unlisted_principals(self):
        registry, workspace = fresh()
        install_width_restriction(workspace)
        workspace.load("perm(A) -> string(A). "
                       'prin("alice"). prin("bob"). prin("eve").')
        workspace.assert_fact("delWidthOn", ("alice", "perm"))
        workspace.assert_fact("delWidth", ("alice", "bob", "perm"))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("delegates", ("alice", "eve", "perm"))

    def test_unrestricted_predicates_unaffected(self):
        registry, workspace = fresh()
        install_width_restriction(workspace)
        workspace.load("perm(A) -> string(A). other(A) -> string(A). "
                       'prin("alice"). prin("eve").')
        workspace.assert_fact("delegates", ("alice", "eve", "other"))


class TestThresholds:
    """wd0-wd2 and the weighted variant (section 4.2.2)."""

    def _bank(self, bureaus=4):
        registry, workspace = fresh("bank")
        install_threshold(workspace, "creditOK", "creditBureau", 3,
                          result="creditOK")
        for i in range(bureaus):
            workspace.assert_fact("pringroup", (f"b{i}", "creditBureau"))
        return registry, workspace

    def test_below_threshold_not_derived(self):
        registry, workspace = self._bank()
        ok = registry.intern(parse_rule('creditOK("acme").'))
        for bureau in ("b0", "b1"):
            workspace.assert_fact("says", (bureau, "bank", ok))
        assert workspace.tuples("creditOK") == set()

    def test_at_threshold_derived(self):
        registry, workspace = self._bank()
        ok = registry.intern(parse_rule('creditOK("acme").'))
        for bureau in ("b0", "b1", "b2"):
            workspace.assert_fact("says", (bureau, "bank", ok))
        assert workspace.tuples("creditOK") == {("acme",)}
        assert ("acme", 3) in workspace.tuples("creditOKCount")

    def test_non_members_do_not_count(self):
        registry, workspace = self._bank()
        ok = registry.intern(parse_rule('creditOK("acme").'))
        for speaker in ("b0", "b1", "stranger"):
            workspace.assert_fact("says", (speaker, "bank", ok))
        assert workspace.tuples("creditOK") == set()

    def test_duplicate_votes_count_once(self):
        registry, workspace = self._bank()
        ok = registry.intern(parse_rule('creditOK("acme").'))
        workspace.assert_fact("says", ("b0", "bank", ok))
        workspace.assert_fact("says", ("b0", "bank", ok))  # EDB dedupe
        workspace.assert_fact("says", ("b1", "bank", ok))
        assert workspace.tuples("creditOK") == set()

    def test_per_subject_counting(self):
        registry, workspace = self._bank()
        acme = registry.intern(parse_rule('creditOK("acme").'))
        globex = registry.intern(parse_rule('creditOK("globex").'))
        for bureau in ("b0", "b1", "b2"):
            workspace.assert_fact("says", (bureau, "bank", acme))
        workspace.assert_fact("says", ("b3", "bank", globex))
        assert workspace.tuples("creditOK") == {("acme",)}

    def test_weighted_threshold(self):
        registry, workspace = fresh("bank")
        install_weighted_threshold(workspace, "creditOK", "creditBureau",
                                   5, result="creditOK")
        weights = {"big": 4, "mid": 2, "small": 1}
        for name, weight in weights.items():
            workspace.assert_fact("pringroup", (name, "creditBureau"))
            workspace.assert_fact("weight", (name, weight))
        ok = registry.intern(parse_rule('creditOK("acme").'))
        workspace.assert_fact("says", ("small", "bank", ok))
        workspace.assert_fact("says", ("mid", "bank", ok))
        assert workspace.tuples("creditOK") == set()     # 3 < 5
        workspace.assert_fact("says", ("big", "bank", ok))
        assert workspace.tuples("creditOK") == {("acme",)}   # 7 >= 5

    def test_heard_channel_threshold(self, make_system):
        """The system-mode variant counting the receipt log (E2E)."""
        system = make_system("plaintext")
        bank = system.create_principal("bank")
        install_threshold(bank.workspace, "creditOK", "creditBureau", 2,
                          result="approved", channel="heard")
        bureaus = [system.create_principal(f"b{i}") for i in range(3)]
        for bureau in bureaus:
            bank.workspace.assert_fact("pringroup",
                                       (bureau.name, "creditBureau"))
        bureaus[0].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("approved") == set()
        bureaus[1].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("approved") == {("acme",)}
