"""Provenance (section 7, built): explain trees and trust chains."""

import pytest

from repro.core.provenance import explain, format_explanation, trust_chain
from repro.workspace.workspace import Workspace


class TestExplain:
    def make_workspace(self):
        workspace = Workspace("w", enable_provenance=True)
        workspace.load("""
            e("a","b"). e("b","c").
            r(X,Y) <- e(X,Y).
            tc: r(X,Z) <- r(X,Y), e(Y,Z).
        """)
        return workspace

    def test_edb_leaf(self):
        workspace = self.make_workspace()
        node = explain(workspace, "e", ("a", "b"))
        assert node.is_edb and node.children == []

    def test_derived_tree(self):
        workspace = self.make_workspace()
        node = explain(workspace, "r", ("a", "c"))
        assert node is not None and not node.is_edb
        assert node.rule == "tc"
        leaf_facts = set()

        def collect(n):
            if n.is_edb:
                leaf_facts.add((n.pred, n.fact))
            for child in n.children:
                collect(child)

        collect(node)
        assert ("e", ("a", "b")) in leaf_facts
        assert ("e", ("b", "c")) in leaf_facts

    def test_unknown_fact(self):
        workspace = self.make_workspace()
        assert explain(workspace, "r", ("z", "z")) is None

    def test_formatting(self):
        workspace = self.make_workspace()
        text = format_explanation(explain(workspace, "r", ("a", "c")))
        assert "tc" in text and "asserted" in text

    def test_disabled_provenance_raises(self):
        workspace = Workspace("w")
        with pytest.raises(ValueError):
            explain(workspace, "p", ("x",))

    def test_provenance_after_retraction(self):
        workspace = self.make_workspace()
        workspace.retract_fact("e", ("b", "c"))
        assert explain(workspace, "r", ("a", "c")) is None
        assert explain(workspace, "r", ("a", "b")) is not None

    def test_cycles_terminate(self):
        workspace = Workspace("w", enable_provenance=True)
        workspace.load('e("a","b"). e("b","a"). '
                       "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z).")
        node = explain(workspace, "r", ("a", "a"))
        assert node is not None


class TestTrustChain:
    def test_says_hops_collected(self, make_system):
        system = make_system("plaintext", enable_provenance=True)
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        bob.load('object("f1"). access(P,O,"read") <- good(P), object(O).')
        alice.says(bob, 'good("carol").')
        system.run()
        hops = trust_chain(bob.workspace, "access", ("carol", "f1", "read"))
        assert any(speaker == "alice" and 'good("carol")' in text
                   for speaker, _listener, text in hops)
