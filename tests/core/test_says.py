"""The says machinery (section 4.1): says0/says1, exp0-exp3."""

import pytest

from repro.core.says import SAYS1, EXP2, install_says_machinery
from repro.datalog.errors import ConstraintViolation
from repro.datalog.parser import parse_rule
from repro.meta.registry import RuleRegistry
from repro.workspace.workspace import Workspace


class TestSays1:
    def test_said_fact_activates(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        workspace.load(SAYS1)
        ref = registry.intern(parse_rule('good("dave").'))
        workspace.assert_fact("says", ("bob", "alice", ref))
        assert workspace.tuples("good") == {("dave",)}

    def test_said_rule_activates_and_runs(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        workspace.load(SAYS1)
        workspace.assert_fact("localdata", ("x",))
        ref = registry.intern(parse_rule("derived(X) <- localdata(X)."))
        workspace.assert_fact("says", ("bob", "alice", ref))
        assert workspace.tuples("derived") == {("x",)}

    def test_says_to_other_principal_does_not_activate(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        workspace.load(SAYS1)
        ref = registry.intern(parse_rule('good("dave").'))
        workspace.assert_fact("says", ("bob", "carol", ref))
        assert workspace.tuples("good") == set()

    def test_self_says_activates(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        workspace.load(SAYS1)
        ref = registry.intern(parse_rule('note("self").'))
        workspace.assert_fact("says", ("alice", "alice", ref))
        assert workspace.tuples("note") == {("self",)}


class TestExp2:
    def test_export_to_me_becomes_says(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        install_says_machinery(workspace)
        ref = registry.intern(parse_rule('fact("f").'))
        # received export: partition key = me
        workspace.assert_fact("export", ("alice", "bob", ref, "sig"))
        assert ("bob", "alice", ref) in workspace.tuples("says")
        assert workspace.tuples("fact") == {("f",)}

    def test_export_to_other_partition_ignored(self):
        registry = RuleRegistry()
        workspace = Workspace("alice", registry=registry)
        install_says_machinery(workspace)
        ref = registry.intern(parse_rule('fact("f").'))
        workspace.assert_fact("export", ("carol", "bob", ref, "sig"))
        assert workspace.tuples("says") == set()


class TestEndToEndExport(object):
    def test_exp1_exports_with_hmac(self, make_system):
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        ref = alice.says(bob, 'greeting("hi").')
        # exp1 derived an export tuple in alice's export relation
        exports = alice.tuples("export")
        assert any(f[0] == "bob" and f[2] == ref for f in exports)
        # the signature is a real HMAC over the canonical text
        (fact,) = [f for f in exports if f[2] == ref]
        signature = fact[3]
        from repro.crypto.hmac_sha1 import hmac_sha1_hex
        from repro.crypto.keystore import shared_secret_id
        secret = alice.keystore.secret(shared_secret_id("alice", "bob"))
        expected = hmac_sha1_hex(secret,
                                 system.registry.canonical_text(ref).encode())
        assert signature == expected

    def test_exp3_rejects_unverifiable_says(self, make_system):
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        ref = alice.intern('lie("x").')
        with pytest.raises(ConstraintViolation):
            bob.assert_fact("says", ("alice", "bob", ref))

    def test_heard_receipts_recorded(self, make_system):
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        ref = alice.says(bob, 'g("1").')
        system.run()
        assert ("alice", ref) in bob.tuples("heard")
