"""Authentication schemes: all four, tampering, reconfiguration (§4.1.2)."""

import pytest

from repro.datalog.errors import ConstraintViolation
from repro.net.transport import decode_fact_message, encode_fact_message


SCHEMES = ["plaintext", "hmac", "rsa", "mixed"]


def two_principals(make_system, auth):
    system = make_system(auth)
    alice = system.create_principal("alice")
    bob = system.create_principal("bob")
    if auth == "mixed":
        for principal, peer in ((alice, "bob"), (bob, "alice")):
            principal.assert_fact("authpolicy", (peer, "hmac"))
    bob.load('seen(X) <- msg(X).')
    return system, alice, bob


class TestAllSchemesDeliver:
    @pytest.mark.parametrize("auth", SCHEMES)
    def test_fact_flows(self, make_system, auth):
        system, alice, bob = two_principals(make_system, auth)
        alice.says(bob, 'msg("hello").')
        report = system.run()
        assert report.delivered == 1 and report.rejected == 0
        assert bob.tuples("seen") == {("hello",)}

    @pytest.mark.parametrize("auth", SCHEMES)
    def test_rule_flows(self, make_system, auth):
        system, alice, bob = two_principals(make_system, auth)
        bob.assert_fact("raw", ("r1",))
        alice.says(bob, "msg(X) <- raw(X).")
        system.run()
        assert bob.tuples("seen") == {("r1",)}

    def test_byte_cost_ordering(self, make_system):
        """RSA signatures are bigger than HMAC tags than nothing."""
        sizes = {}
        for auth in ("plaintext", "hmac", "rsa"):
            system, alice, bob = two_principals(make_system, auth)
            alice.says(bob, 'msg("hello").')
            report = system.run()
            sizes[auth] = report.bytes
        assert sizes["plaintext"] < sizes["hmac"] < sizes["rsa"]


class TestTampering:
    def test_modified_payload_rejected(self, make_system):
        """A man-in-the-middle rewriting the rule invalidates the signature."""
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        alice.says(bob, 'msg("genuine").')
        # intercept: take alice's export, swap the rule, keep the signature
        (fact,) = [f for f in alice.tuples("export") if f[0] == "bob"]
        forged_ref = alice.intern('msg("forged").')
        forged = ("bob", "alice", forged_ref, fact[3])
        blob = encode_fact_message("export", forged, system.registry, to="bob")
        to, pred, decoded = decode_fact_message(blob, system.registry)
        with pytest.raises(ConstraintViolation):
            bob.assert_fact(pred, decoded)
        assert not bob.tuples("msg")

    def test_wrong_speaker_rejected(self, make_system):
        """Claiming someone else said it fails their verification key."""
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        alice.says(bob, 'msg("from-alice").')
        (fact,) = [f for f in alice.tuples("export") if f[0] == "bob"]
        # replay alice's message claiming carol said it
        forged = ("bob", "carol", fact[2], fact[3])
        with pytest.raises(ConstraintViolation):
            bob.assert_fact("export", forged)

    def test_rsa_cross_principal_replay_rejected(self, make_system):
        system = make_system("rsa")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        alice.says(bob, 'msg("secret-for-bob").')
        (fact,) = [f for f in alice.tuples("export") if f[0] == "bob"]
        # For RSA the signature covers the rule only, so re-addressing the
        # envelope *is* accepted by exp3 — but only as alice's words.
        carol.assert_fact("export", ("carol", "alice", fact[2], fact[3]))
        assert ("alice", "carol", fact[2]) in carol.tuples("says")

    def test_audit_trail_records_rejections(self, make_system):
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        ref = alice.intern('msg("x").')
        try:
            bob.assert_fact("says", ("alice", "bob", ref))
        except ConstraintViolation:
            pass
        assert any(e.kind == "constraint_violation" for e in bob.audit)
        assert system.audit_trail()


class TestReconfiguration:
    """Section 4.1.2: swapping schemes changes two rules, nothing else."""

    def test_scheme_definitions_differ_only_in_exp1_exp3(self):
        from repro.core.schemes import scheme
        rsa = scheme("rsa")
        hmac = scheme("hmac")
        assert rsa.exp1_text != hmac.exp1_text
        assert rsa.exp3_text != hmac.exp3_text
        # and that is all a scheme consists of (plus provisioning)
        assert set(vars(rsa)) == {"name", "exp1_text", "exp3_text",
                                  "provision", "rule_labels"}

    @pytest.mark.parametrize("path", [
        ("rsa", "hmac"), ("hmac", "plaintext"), ("plaintext", "rsa"),
        ("hmac", "hmac"),
    ])
    def test_reconfigure_preserves_knowledge(self, make_system, path):
        before, after = path
        system, alice, bob = two_principals(make_system, before)
        alice.says(bob, 'msg("one").')
        system.run()
        system.reconfigure_auth(after)
        alice.says(bob, 'msg("two").')
        system.run()
        assert bob.tuples("seen") == {("one",), ("two",)}
        assert system.auth_name == after

    def test_policies_untouched_by_reconfiguration(self, make_system):
        system, alice, bob = two_principals(make_system, "rsa")
        old_scheme_refs = set(bob.scheme_rule_refs)
        policy_refs = bob.workspace.active_refs() - old_scheme_refs
        system.reconfigure_auth("hmac")
        # policy rules (seen <- msg, says1, exp2, …) survive; only the
        # exp1-family rules were swapped
        still_active = bob.workspace.active_refs()
        assert policy_refs <= still_active
        assert not old_scheme_refs & still_active

    def test_old_signatures_do_not_verify_under_new_scheme(self, make_system):
        system, alice, bob = two_principals(make_system, "rsa")
        alice.says(bob, 'msg("one").')
        system.run()
        (old_export,) = [f for f in bob.workspace.edb.get("export", set())]
        system.reconfigure_auth("hmac")
        with pytest.raises(ConstraintViolation):
            bob.assert_fact("export", old_export)


class TestMixedPolicy:
    def test_per_peer_schemes(self, make_system):
        system = make_system("mixed")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        alice.assert_fact("authpolicy", ("bob", "rsa"))
        alice.assert_fact("authpolicy", ("carol", "plaintext"))
        bob.assert_fact("authpolicy", ("alice", "rsa"))
        carol.assert_fact("authpolicy", ("alice", "plaintext"))
        bob.load("seen(X) <- msg(X).")
        carol.load("seen(X) <- msg(X).")
        alice.says(bob, 'msg("signed").')
        alice.says(carol, 'msg("clear").')
        report = system.run()
        assert report.rejected == 0
        assert bob.tuples("seen") == {("signed",)}
        assert carol.tuples("seen") == {("clear",)}

    def test_no_policy_no_export(self, make_system):
        system = make_system("mixed")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        bob.load("seen(X) <- msg(X).")
        alice.says(bob, 'msg("dropped").')   # no authpolicy for bob
        report = system.run()
        assert report.delivered == 0
        assert bob.tuples("seen") == set()
