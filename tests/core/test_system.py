"""System runtime: placement, distribution, colocation, multi-hop runs."""

import pytest

from repro.datalog.errors import WorkspaceError
from repro.datalog.terms import PredPartition
from repro.net.network import SimulatedNetwork


class TestPrincipalManagement:
    def test_duplicate_principal_rejected(self, make_system):
        system = make_system()
        system.create_principal("alice")
        with pytest.raises(WorkspaceError):
            system.create_principal("alice")

    def test_everyone_knows_locations(self, make_system):
        system = make_system()
        alice = system.create_principal("alice")
        bob = system.create_principal("bob", node="host7")
        assert ("bob", "host7") in alice.tuples("loc")
        assert ("alice", "alice") in bob.tuples("loc")
        assert ("bob",) in alice.tuples("prin")

    def test_principal_lookup(self, make_system):
        system = make_system()
        alice = system.create_principal("alice")
        assert system.principal("alice") is alice
        with pytest.raises(WorkspaceError):
            system.principal("ghost")


class TestPlacement:
    def test_ld2_places_export_partitions(self, make_system):
        """The paper's ld1/ld2 rules drive predNode placement."""
        system = make_system()
        alice = system.create_principal("alice")
        system.create_principal("bob", node="hostB")
        placements = dict()
        for part, node in alice.tuples("predNode"):
            placements[part] = node
        assert placements[PredPartition("export", ("bob",))] == "hostB"
        assert placements[PredPartition("export", ("alice",))] == "alice"

    def test_custom_placement_via_loc(self, make_system):
        """'Users can easily enforce various distribution plans by
        modifying the loc table' (section 5.2)."""
        system = make_system()
        alice = system.create_principal("alice")
        system.network.add_node("elsewhere")
        with alice.workspace.transaction():
            alice.assert_fact("prin", ("carol",))
            alice.assert_fact("node", ("elsewhere",))
            alice.assert_fact("loc", ("carol", "elsewhere"))
        placements = dict(alice.tuples("predNode"))
        assert placements[PredPartition("export", ("carol",))] == "elsewhere"


class TestColocation:
    def test_two_principals_one_node(self, make_system):
        """Location transparency: policies unchanged when colocated."""
        system = make_system("hmac")
        alice = system.create_principal("alice", node="shared")
        bob = system.create_principal("bob", node="shared")
        bob.load("seen(X) <- msg(X).")
        alice.says(bob, 'msg("local").')
        report = system.run()
        assert bob.tuples("seen") == {("local",)}
        # messages between colocated principals cost zero latency
        assert report.virtual_time == 0.0

    def test_mixed_colocated_and_remote(self, make_system):
        system = make_system("plaintext")
        alice = system.create_principal("alice", node="n1")
        bob = system.create_principal("bob", node="n1")
        carol = system.create_principal("carol", node="n2")
        for principal in (bob, carol):
            principal.load("seen(X) <- msg(X).")
        alice.says(bob, 'msg("near").')
        alice.says(carol, 'msg("far").')
        report = system.run()
        assert bob.tuples("seen") == {("near",)}
        assert carol.tuples("seen") == {("far",)}
        assert report.virtual_time > 0.0


class TestRunLoop:
    def test_multi_hop_forwarding(self, make_system):
        """A fact relayed a→b→c needs multiple rounds."""
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        c = system.create_principal("c")
        b.load('says(me,"c",[| msg(X). |]) <- msg(X).')
        c.load("seen(X) <- msg(X).")
        a.says(b, 'msg("relay me").')
        report = system.run()
        assert c.tuples("seen") == {("relay me",)}
        assert report.rounds >= 2

    def test_no_duplicate_sends(self, make_system):
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        a.says(b, 'msg("once").')
        first = system.run()
        second = system.run()
        assert first.delivered == 1
        assert second.delivered == 0

    def test_quiescence_report(self, make_system):
        system = make_system()
        report = system.run()
        assert report.rounds == 0 and report.delivered == 0

    def test_says_to_unknown_principal_stays_queued(self, make_system):
        system = make_system("plaintext")
        a = system.create_principal("a")
        a.says("ghost", 'msg("void").')
        report = system.run()
        # no placement for ghost → nothing is sent, nothing crashes
        assert report.delivered == 0

    def test_bidirectional_exchange(self, make_system):
        system = make_system("hmac")
        a = system.create_principal("a")
        b = system.create_principal("b")
        a.load("got(X) <- ping(X).")
        b.load('says(me,"a",[| ping(X). |]) <- pong(X).')
        a.says(b, 'pong("1").')
        system.run()
        assert a.tuples("got") == {("1",)}


class TestNetworkIntegration:
    def test_latency_model_respected(self, make_system):
        network = SimulatedNetwork(default_latency=3.0)
        system = make_system("plaintext", network=network)
        a = system.create_principal("a")
        b = system.create_principal("b")
        b.load("seen(X) <- msg(X).")
        a.says(b, 'msg("slow").')
        report = system.run()
        assert report.virtual_time >= 3.0

    def test_traffic_accounting(self, make_system):
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        a.says(b, 'msg("counted").')
        report = system.run()
        assert report.bytes > 0
        assert system.network.total.messages == 1


class TestOpenNetworkRobustness:
    """The system's network is open: foreign/corrupted traffic must be
    rejected and audited, never crash the run loop (PR-3 regressions)."""

    def test_injected_garbage_is_rejected_not_fatal(self, make_system):
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        b.load("seen(X) <- msg(X).")
        a.says(b, 'msg("real").')
        system.network.send("a", "b", b"\xff not a message")
        report = system.run()
        assert b.tuples("seen") == {("real",)}
        assert report.rejected == 1
        assert report.rejected_detail[0][0] == "<decode>"

    def test_exhausted_max_rounds_returns_partial_report(self, make_system):
        """The open-transport contract: hitting the round cap returns a
        best-effort report (the pre-scheduler behavior), not an
        exception surfacing from the workspace API."""
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        b.load("seen(X) <- msg(X).")
        a.says(b, 'msg("one").')
        a.says(b, 'msg("two").')
        report = system.run(max_rounds=1)    # too few to finish cleanly
        assert report.rounds <= 1            # capped, not crashed
        second = system.run()                # a later run completes it
        assert b.tuples("seen") == {("one",), ("two",)}
        assert report.rejected + second.rejected == 0

    def test_placement_through_principal_less_node_still_delivers(
            self, make_system):
        """predNode may route through a network node hosting no
        principal; import finds the destination by the message's ``to``
        field, so the facts must not be dropped as 'unknown node'."""
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        system.network.add_node("relay")
        b.load("seen(X) <- msg(X).")
        # route everything addressed to b through the relay node
        for principal in (a, b):
            with principal.workspace.transaction():
                principal.workspace.assert_fact("node", ("relay",))
                principal.workspace.retract_fact("loc", ("b", "b"))
                principal.workspace.assert_fact("loc", ("b", "relay"))
        a.says(b, 'msg("via relay").')
        report = system.run()
        assert b.tuples("seen") == {("via relay",)}
        assert report.rejected == 0

    def test_async_relay_routing_drains_every_host(self, make_system):
        """Overlapped mode: an import routed through a relay node lands
        at a principal hosted *elsewhere*; that host's consequent
        exports must still ship (every node is offered a drain after an
        integration), or the multi-hop chain silently stalls."""
        system = make_system("plaintext")
        a = system.create_principal("a")
        b = system.create_principal("b")
        c = system.create_principal("c")
        system.network.add_node("relay")
        b.load('says(me,"c",[| msg(X). |]) <- msg(X).')
        c.load("seen(X) <- msg(X).")
        for principal in (a, b, c):
            with principal.workspace.transaction():
                principal.workspace.assert_fact("node", ("relay",))
                principal.workspace.retract_fact("loc", ("b", "b"))
                principal.workspace.assert_fact("loc", ("b", "relay"))
        a.says(b, 'msg("hop").')
        report = system.run(mode="async")
        assert c.tuples("seen") == {("hop",)}
        assert report.rejected == 0

    def test_corrupted_midrun_batch_is_rejected_not_fatal(self, make_system):
        """A *ticketed* batch corrupted in transit (round stamp and all)
        must not wedge the quiescence ledger: the run completes with the
        rejection audited, and the sender's oldest outstanding ticket is
        retired on the evidence that something of theirs arrived."""
        class CorruptingNetwork(SimulatedNetwork):
            def __init__(self):
                super().__init__()
                self.sent = 0

            def send(self, src, dst, payload, at=None):
                self.sent += 1
                if self.sent == 2:      # the round-1 relay batch
                    payload = b"\xff" + payload[1:]
                super().send(src, dst, payload, at=at)

        system = make_system("plaintext", network=CorruptingNetwork())
        a = system.create_principal("a")
        b = system.create_principal("b")
        system.create_principal("c")
        b.load('says(me,"c",[| msg(X). |]) <- msg(X).')
        a.says(b, 'msg("relay me").')
        report = system.run()       # must not raise
        assert report.rejected == 1
        assert report.rejected_detail[0][0] == "<decode>"
        assert b.tuples("msg") == {("relay me",)}

    def test_legacy_single_fact_message_imports(self, make_system):
        from repro.net.transport import encode_fact_message

        system = make_system("plaintext")
        system.create_principal("a")
        b = system.create_principal("b")
        b.load("seen(X) <- msg(X).")
        blob = encode_fact_message("msg", ("legacy",), system.registry,
                                   to="b")
        system.network.send("a", "b", blob)
        report = system.run()
        assert b.tuples("seen") == {("legacy",)}
        assert report.delivered == 1
        assert report.rejected == 0

    def test_batches_count_includes_early_size_capped_flushes(
            self, make_system):
        system = make_system("plaintext", max_batch_bytes=64)
        a = system.create_principal("a")
        b = system.create_principal("b")
        b.load("seen(X) <- msg(X).")
        for i in range(20):
            a.says(b, f'msg("payload number {i}").')
        report = system.run()
        assert len(b.tuples("seen")) == 20
        assert report.batches == system.network.total.messages
        assert report.batches > 1  # the cap actually split the round
