"""SHA-1 (from scratch), HMAC-SHA1 (RFC 2202), CRC-32, stream cipher."""

import hashlib
import hmac as stdlib_hmac
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.checksums import crc32, sha1_hex, sha256_hex
from repro.crypto.hmac_sha1 import (
    constant_time_equal,
    hmac_sha1,
    hmac_sha1_hex,
    verify_hmac_sha1,
)
from repro.crypto.sha1 import sha1
from repro.crypto import stream
from repro.datalog.errors import CryptoError


class TestPureSHA1:
    # FIPS 180 / well-known vectors
    VECTORS = [
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
        (b"a" * 1000, "291e9a6c66994949b57ba5e650361e98fc36b1ba"),
    ]

    @pytest.mark.parametrize("message,expected", VECTORS)
    def test_vectors(self, message, expected):
        assert sha1(message).hex() == expected

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_hashlib(self, message):
        assert sha1(message) == hashlib.sha1(message).digest()

    def test_block_boundaries(self):
        # padding edge cases: 55, 56, 63, 64, 65 bytes
        for length in (55, 56, 63, 64, 65, 119, 120):
            message = bytes(range(256))[:length] * 1
            assert sha1(message) == hashlib.sha1(message).digest()


class TestHMACSHA1:
    # RFC 2202 test vectors
    RFC2202 = [
        (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
        (b"Jefe", b"what do ya want for nothing?",
         "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
        (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
        (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
         "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
    ]

    @pytest.mark.parametrize("key,message,expected", RFC2202)
    def test_rfc_2202_vectors(self, key, message, expected):
        assert hmac_sha1_hex(key, message) == expected
        assert hmac_sha1_hex(key, message, pure=True) == expected

    @given(st.binary(min_size=0, max_size=100), st.binary(min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_stdlib(self, key, message):
        expected = stdlib_hmac.new(key, message, hashlib.sha1).digest()
        assert hmac_sha1(key, message) == expected

    @given(st.binary(min_size=0, max_size=80), st.binary(min_size=0, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_property_pure_core_agrees(self, key, message):
        assert hmac_sha1(key, message, pure=True) == hmac_sha1(key, message)

    def test_verify(self):
        tag = hmac_sha1(b"key", b"msg")
        assert verify_hmac_sha1(b"key", b"msg", tag)
        assert not verify_hmac_sha1(b"key", b"msg!", tag)
        assert not verify_hmac_sha1(b"yek", b"msg", tag)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"ab")


class TestCRC32:
    def test_known_value(self):
        assert crc32(b"123456789") == 0xCBF43926

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_streaming(self):
        whole = crc32(b"hello world")
        partial = crc32(b" world", crc32(b"hello"))
        assert whole == partial

    def test_hash_helpers(self):
        assert sha256_hex(b"x") == hashlib.sha256(b"x").hexdigest()
        assert sha1_hex(b"x") == hashlib.sha1(b"x").hexdigest()


class TestStreamCipher:
    def test_round_trip(self):
        blob = stream.encrypt(b"key", b"attack at dawn")
        assert stream.decrypt(b"key", blob) == b"attack at dawn"

    def test_wrong_key_garbles(self):
        blob = stream.encrypt(b"key", b"attack at dawn")
        assert stream.decrypt(b"yek", blob) != b"attack at dawn"

    def test_fresh_nonce_randomizes(self):
        first = stream.encrypt(b"key", b"msg")
        second = stream.encrypt(b"key", b"msg")
        assert first != second

    def test_deterministic_with_nonce(self):
        nonce = b"n" * 16
        assert stream.encrypt(b"k", b"m", nonce) == stream.encrypt(b"k", b"m", nonce)

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            stream.encrypt(b"k", b"m", nonce=b"short")

    def test_truncated_blob(self):
        with pytest.raises(CryptoError):
            stream.decrypt(b"k", b"tooshort")

    @given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, key, plaintext):
        assert stream.decrypt(key, stream.encrypt(key, plaintext)) == plaintext
