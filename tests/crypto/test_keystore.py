"""Keystore and the Datalog crypto builtins."""

import pytest

from repro.crypto import rsa
from repro.crypto.keystore import (
    KeyStore,
    generate_shared_secret,
    rsa_private_id,
    rsa_public_id,
    shared_secret_id,
)
from repro.datalog.errors import CryptoError
from repro.workspace.workspace import Workspace
from repro.crypto.datalog_builtins import register_crypto_builtins


class TestKeyStore:
    def test_rsa_storage(self):
        store = KeyStore()
        key = rsa.generate_keypair(256, seed=1)
        store.install_rsa_private("k1", key)
        store.install_rsa_public("k2", key.public())
        assert store.rsa_private("k1") is key
        assert store.rsa_public("k2") == key.public()

    def test_missing_keys_raise(self):
        store = KeyStore()
        with pytest.raises(CryptoError):
            store.rsa_private("missing")
        with pytest.raises(CryptoError):
            store.rsa_public("missing")
        with pytest.raises(CryptoError):
            store.secret("missing")

    def test_secret_storage(self):
        store = KeyStore()
        store.install_secret("s", b"x" * 32)
        assert store.secret("s") == b"x" * 32
        assert store.has_secret("s") and not store.has_secret("t")

    def test_id_conventions(self):
        assert rsa_private_id("alice") == "rsa-priv:alice"
        assert rsa_public_id("alice") == "rsa-pub:alice"
        # shared ids are symmetric
        assert shared_secret_id("alice", "bob") == shared_secret_id("bob", "alice")

    def test_generated_secret_length(self):
        import random
        secret = generate_shared_secret("a", "b", random.Random(1))
        assert len(secret) == 32


class TestCryptoBuiltinsInWorkspace:
    """The paper's exp1/exp3 builtins running inside rule bodies."""

    def _workspace(self):
        workspace = Workspace("alice")
        register_crypto_builtins(workspace.builtins)
        workspace.keystore = KeyStore()
        return workspace

    def test_rsa_sign_verify_roundtrip_in_rules(self):
        workspace = self._workspace()
        key = rsa.generate_keypair(256, seed=2)
        workspace.keystore.install_rsa_private("priv", key)
        workspace.keystore.install_rsa_public("pub", key.public())
        workspace.load("""
            signed(R,S) <- tosign(R), rsasign(R,S,"priv").
            checked(R) <- signed(R,S), rsaverify(R,S,"pub").
        """)
        workspace.load('tosign([| payload("x"). |]).')
        assert len(workspace.tuples("signed")) == 1
        assert len(workspace.tuples("checked")) == 1

    def test_hmac_sign_verify_in_rules(self):
        workspace = self._workspace()
        workspace.keystore.install_secret("sk", b"s" * 32)
        workspace.load("""
            signed(R,S) <- tosign(R), hmacsign(R,"sk",S).
            checked(R) <- signed(R,S), hmacverify(R,S,"sk").
        """)
        workspace.load('tosign([| payload("x"). |]).')
        assert len(workspace.tuples("checked")) == 1

    def test_verify_fails_on_wrong_tag(self):
        workspace = self._workspace()
        workspace.keystore.install_secret("sk", b"s" * 32)
        workspace.load('bad(R) <- tosign(R), hmacverify(R,"00ff","sk").')
        workspace.load('tosign([| payload("x"). |]).')
        assert workspace.tuples("bad") == set()

    def test_missing_secret_fails_closed(self):
        workspace = self._workspace()
        workspace.load('bad(R) <- tosign(R), hmacverify(R,"00ff","nokey").')
        workspace.load('tosign([| payload("x"). |]).')
        assert workspace.tuples("bad") == set()

    def test_encrypt_decrypt_rule_roundtrip(self):
        workspace = self._workspace()
        workspace.keystore.install_secret("sk", b"s" * 32)
        workspace.load("""
            cipher(C) <- plain(R), encryptrule(R,"sk",C).
            recovered(R2) <- cipher(C), decryptrule(C,"sk",R2).
        """)
        workspace.load('plain([| payload("deep secret"). |]).')
        ((recovered,),) = workspace.tuples("recovered")
        assert workspace.rule_text(recovered) == 'payload("deep secret").'

    def test_hash_and_checksum_builtins(self):
        workspace = self._workspace()
        workspace.load("""
            digest(H) <- v(R), sha256hash(R,H).
            crc(C) <- v(R), checksum(R,C).
        """)
        workspace.load('v([| payload("x"). |]).')
        assert len(workspace.tuples("digest")) == 1
        assert len(workspace.tuples("crc")) == 1

    def test_signature_covers_canonical_form(self):
        """Alpha-variant rules must share one signature (certificates)."""
        workspace = self._workspace()
        workspace.keystore.install_secret("sk", b"s" * 32)
        workspace.load('signed(R,S) <- tosign(R), hmacsign(R,"sk",S).')
        workspace.load("tosign([| p(X) <- q(X). |]).")
        workspace.load("tosign([| p(Zz) <- q(Zz). |]).")
        # alpha variants intern to one rule → exactly one signed pair
        assert len(workspace.tuples("signed")) == 1
