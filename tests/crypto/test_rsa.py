"""From-scratch RSA: primality, keygen, signatures, encryption."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import rsa
from repro.datalog.errors import CryptoError


class TestMillerRabin:
    KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2 ** 61 - 1]
    KNOWN_COMPOSITES = [1, 4, 9, 100, 7917, 561, 41041, 2 ** 61 - 3]
    # 561 and 41041 are Carmichael numbers — Fermat-test liars.

    @pytest.mark.parametrize("prime", KNOWN_PRIMES)
    def test_primes_accepted(self, prime):
        assert rsa.is_probable_prime(prime)

    @pytest.mark.parametrize("composite", KNOWN_COMPOSITES)
    def test_composites_rejected(self, composite):
        assert not rsa.is_probable_prime(composite)

    @given(st.integers(2, 10 ** 6))
    @settings(max_examples=200, deadline=None)
    def test_property_matches_trial_division(self, candidate):
        by_trial = all(candidate % d for d in range(2, int(candidate ** 0.5) + 1))
        assert rsa.is_probable_prime(candidate) == (by_trial and candidate >= 2)

    def test_generated_primes_have_exact_size(self):
        rng = random.Random(5)
        for bits in (64, 128):
            prime = rsa.generate_prime(bits, rng)
            assert prime.bit_length() == bits
            assert rsa.is_probable_prime(prime)


class TestKeyGeneration:
    def test_key_consistency(self):
        key = rsa.generate_keypair(bits=256, seed=1)
        assert key.n == key.p * key.q
        assert key.n.bit_length() == 256
        # e*d ≡ 1 (mod φ(n))
        phi = (key.p - 1) * (key.q - 1)
        assert (key.e * key.d) % phi == 1

    def test_deterministic_with_seed(self):
        assert rsa.generate_keypair(256, seed=9) == rsa.generate_keypair(256, seed=9)
        assert rsa.generate_keypair(256, seed=9) != rsa.generate_keypair(256, seed=10)

    def test_fingerprint_format(self):
        key = rsa.generate_keypair(256, seed=2).public()
        assert key.fingerprint().startswith("rsa:256:")


class TestSignatures:
    KEY = rsa.generate_keypair(bits=256, seed=3)

    def test_round_trip(self):
        signature = rsa.sign(b"hello", self.KEY)
        assert rsa.verify(b"hello", signature, self.KEY.public())

    def test_tampered_message_rejected(self):
        signature = rsa.sign(b"hello", self.KEY)
        assert not rsa.verify(b"hellp", signature, self.KEY.public())

    def test_tampered_signature_rejected(self):
        signature = rsa.sign(b"hello", self.KEY)
        assert not rsa.verify(b"hello", signature ^ 1, self.KEY.public())

    def test_wrong_key_rejected(self):
        other = rsa.generate_keypair(bits=256, seed=4)
        signature = rsa.sign(b"hello", self.KEY)
        assert not rsa.verify(b"hello", signature, other.public())

    def test_out_of_range_signature_rejected(self):
        assert not rsa.verify(b"hello", self.KEY.n + 5, self.KEY.public())
        assert not rsa.verify(b"hello", -1, self.KEY.public())

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_property_sign_verify(self, message):
        signature = rsa.sign(message, self.KEY)
        assert rsa.verify(message, signature, self.KEY.public())


class TestEncryption:
    KEY = rsa.generate_keypair(bits=256, seed=6)

    def test_int_round_trip(self):
        plaintext = 123456789
        ciphertext = rsa.encrypt_int(plaintext, self.KEY.public())
        assert ciphertext != plaintext
        assert rsa.decrypt_int(ciphertext, self.KEY) == plaintext

    def test_out_of_range_rejected(self):
        with pytest.raises(CryptoError):
            rsa.encrypt_int(self.KEY.n, self.KEY.public())
        with pytest.raises(CryptoError):
            rsa.decrypt_int(-1, self.KEY)

    @given(st.integers(0, 2 ** 128))
    @settings(max_examples=50, deadline=None)
    def test_property_encrypt_decrypt(self, plaintext):
        ciphertext = rsa.encrypt_int(plaintext, self.KEY.public())
        assert rsa.decrypt_int(ciphertext, self.KEY) == plaintext
