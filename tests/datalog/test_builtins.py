"""Builtin registry, arithmetic/comparison semantics, standard library."""

import pytest

from repro.datalog.builtins import (
    BuiltinRegistry,
    apply_arith,
    apply_comparison,
    invoke_builtin,
    standard_registry,
)
from repro.datalog.errors import BuiltinError


class TestArithmetic:
    def test_int_ops(self):
        assert apply_arith("+", 2, 3) == 5
        assert apply_arith("-", 2, 3) == -1
        assert apply_arith("*", 2, 3) == 6
        assert apply_arith("%", 7, 3) == 1

    def test_exact_int_division_stays_int(self):
        result = apply_arith("/", 6, 3)
        assert result == 2 and isinstance(result, int)

    def test_inexact_division_floats(self):
        assert apply_arith("/", 7, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(BuiltinError):
            apply_arith("/", 1, 0)

    def test_string_concatenation_via_plus(self):
        assert apply_arith("+", "a", "b") == "ab"

    def test_mixed_types_rejected(self):
        with pytest.raises(BuiltinError):
            apply_arith("+", "a", 1)

    def test_bool_is_not_a_number(self):
        with pytest.raises(BuiltinError):
            apply_arith("+", True, 1)


class TestComparison:
    def test_equality_any_type(self):
        assert apply_comparison("=", "a", "a")
        assert apply_comparison("!=", "a", 1)

    def test_numeric_ordering(self):
        assert apply_comparison("<", 1, 2)
        assert apply_comparison(">=", 2.5, 2)

    def test_string_ordering(self):
        assert apply_comparison("<", "a", "b")

    def test_cross_type_ordering_rejected(self):
        with pytest.raises(BuiltinError):
            apply_comparison("<", "a", 1)


class TestRegistry:
    def test_register_and_lookup(self):
        registry = BuiltinRegistry()
        definition = registry.register("f", "io", lambda x: [(x + 1,)])
        assert registry.lookup("f") is definition
        assert definition.input_positions == (0,)
        assert definition.output_positions == (1,)

    def test_bad_mode_string(self):
        with pytest.raises(BuiltinError):
            BuiltinRegistry().register("f", "ix", lambda x: x)

    def test_child_sees_parent(self):
        parent = BuiltinRegistry()
        parent.register("f", "i", lambda x: True)
        child = parent.child()
        assert "f" in child
        child.register("g", "i", lambda x: True)
        assert "g" not in parent

    def test_invoke_test_builtin(self):
        definition = BuiltinRegistry().register("pos", "i", lambda x: x > 0)
        assert list(invoke_builtin(definition, (1,))) == [()]
        assert list(invoke_builtin(definition, (-1,))) == []

    def test_invoke_scalar_normalization(self):
        definition = BuiltinRegistry().register("inc", "io", lambda x: [x + 1])
        assert list(invoke_builtin(definition, (1,))) == [(2,)]

    def test_invoke_wrong_width(self):
        definition = BuiltinRegistry().register("bad", "io", lambda x: [(1, 2)])
        with pytest.raises(BuiltinError):
            list(invoke_builtin(definition, (0,)))


class TestStandardLibrary:
    def setup_method(self):
        self.registry = standard_registry()

    def call(self, name, *inputs):
        return list(invoke_builtin(self.registry.lookup(name), inputs))

    def test_type_predicates(self):
        assert self.call("int", 3) == [()]
        assert self.call("int", True) == []      # bool is not int
        assert self.call("string", "x") == [()]
        assert self.call("float", 1.5) == [()]
        assert self.call("float", 1) == []
        assert self.call("number", 1) == [()]
        assert self.call("bool", False) == [()]
        assert self.call("any", object()) == [()]

    def test_strlen(self):
        assert self.call("strlen", "abcd") == [(4,)]

    def test_concat(self):
        assert self.call("concat", "a", "b") == [("ab",)]

    def test_list_builtins(self):
        assert self.call("list_nil") == [((),)]
        assert self.call("list_cons", "a", ("b",)) == [(("a", "b"),)]
        assert self.call("list_append", ("a",), "b") == [(("a", "b"),)]
        assert self.call("list_member", "a", ("a", "b")) == [()]
        assert self.call("list_member", "z", ("a", "b")) == []
        assert self.call("list_not_member", "z", ("a", "b")) == [()]
        assert self.call("list_length", ("a", "b")) == [(2,)]
        assert self.call("list_first", ("a", "b")) == [("a",)]
        assert self.call("list_first", ()) == []
