"""Constraint checking: fail() semantics, positive form, existential RHS."""

import pytest

from repro.datalog.constraints import check_constraint, check_constraints
from repro.datalog.database import Database
from repro.datalog.errors import SafetyError
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Constraint


def constraint_of(source):
    statements = parse_statements(source)
    assert len(statements) == 1 and isinstance(statements[0], Constraint)
    return statements[0]


def db_with(facts):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    return database


class TestBasic:
    def test_satisfied(self):
        constraint = constraint_of("access(P,O,M) -> principal(P).")
        database = db_with({"access": [("alice", "f", "r")],
                            "principal": [("alice",)]})
        assert check_constraint(constraint, database, EvalContext()) == []

    def test_violated_with_witness(self):
        constraint = constraint_of("access(P,O,M) -> principal(P).")
        database = db_with({"access": [("eve", "f", "r")]})
        violations = check_constraint(constraint, database, EvalContext())
        assert len(violations) == 1
        assert violations[0].bindings["P"] == "eve"

    def test_declaration_never_fails(self):
        constraint = constraint_of("rule(R) -> .")
        database = db_with({"rule": [("anything",)]})
        assert check_constraint(constraint, database, EvalContext()) == []

    def test_multiple_rhs_conjuncts(self):
        constraint = constraint_of("access(P,O,M) -> principal(P), object(O).")
        database = db_with({"access": [("a", "f", "r")],
                            "principal": [("a",)]})
        violations = check_constraint(constraint, database, EvalContext())
        assert len(violations) == 1  # object(O) missing

    def test_limit(self):
        constraint = constraint_of("v(X) -> w(X).")
        database = db_with({"v": [(1,), (2,), (3,)]})
        violations = check_constraint(constraint, database, EvalContext(), limit=2)
        assert len(violations) == 2


class TestExistentialRHS:
    def test_rhs_variable_existentially_quantified(self):
        # like exp3: some S,K must exist
        constraint = constraint_of("said(U,R) -> export(U,R,S), pubkey(U,K).")
        database = db_with({
            "said": [("alice", "r1")],
            "export": [("alice", "r1", "sig")],
            "pubkey": [("alice", "k1")],
        })
        assert check_constraint(constraint, database, EvalContext()) == []

    def test_rhs_witness_missing(self):
        constraint = constraint_of("said(U,R) -> export(U,R,S).")
        database = db_with({"said": [("alice", "r1")],
                            "export": [("alice", "r2", "sig")]})
        assert len(check_constraint(constraint, database, EvalContext())) == 1

    def test_disjunctive_rhs(self):
        constraint = constraint_of("v(X) -> w(X) ; u(X).")
        database = db_with({"v": [(1,), (2,)], "w": [(1,)], "u": [(2,)]})
        assert check_constraint(constraint, database, EvalContext()) == []

    def test_equality_escape_in_rhs(self):
        constraint = constraint_of('v(X) -> X = "me" ; w(X).')
        database = db_with({"v": [("me",), ("other",)], "w": []})
        violations = check_constraint(constraint, database, EvalContext())
        assert len(violations) == 1
        assert violations[0].bindings["X"] == "other"

    def test_negated_rhs(self):
        constraint = constraint_of("locked(P) -> !delegates(P,_).")
        database = db_with({"locked": [("a",)], "delegates": [("a", "b")]})
        assert len(check_constraint(constraint, database, EvalContext())) == 1
        database = db_with({"locked": [("a",)], "delegates": [("z", "b")]})
        assert check_constraint(constraint, database, EvalContext()) == []


class TestDisjunctiveLHS:
    def test_each_alternative_checked(self):
        constraint = constraint_of("(v(X) ; u(X)) -> w(X).")
        database = db_with({"v": [(1,)], "u": [(2,)], "w": [(1,)]})
        violations = check_constraint(constraint, database, EvalContext())
        assert len(violations) == 1
        assert violations[0].bindings["X"] == 2


class TestMultipleConstraints:
    def test_accumulation(self):
        constraints = [
            constraint_of("v(X) -> w(X)."),
            constraint_of("u(X) -> w(X)."),
        ]
        database = db_with({"v": [(1,)], "u": [(2,)]})
        violations = check_constraints(constraints, database, EvalContext())
        assert len(violations) == 2

    def test_purely_negative_lhs_is_existential(self):
        # `!p(X)` with X occurring nowhere else means "no p fact exists":
        # the check is well-defined, not a safety error.
        constraint = constraint_of("!p(_) -> q(_).")
        empty = db_with({})
        assert len(check_constraint(constraint, empty, EvalContext())) == 1
        populated = db_with({"p": [(1,)]})
        assert check_constraint(constraint, populated, EvalContext()) == []

    def test_unsafe_comparison_lhs_raises(self):
        constraint = constraint_of("X > 3 -> q(X).")
        with pytest.raises(SafetyError):
            check_constraint(constraint, db_with({}), EvalContext())


class TestConstraintPlansOverLargeRelations:
    def test_band_keyed_cache_handles_relation_valued_sizes(self):
        # regression: relation_sizes() returns live Relation objects since
        # the distinct-count statistics; the constraint plan cache must
        # band on their cardinality, not compare them to ints
        from repro.datalog.parser import parse_statements
        from repro.datalog.runtime import EvalContext
        from repro.datalog.terms import Constraint

        (constraint,) = [
            s for s in parse_statements("big(X) -> ok(X).")
            if isinstance(s, Constraint)
        ]
        db = Database()
        for i in range(100):  # past _COST_MODEL_MIN_SIZE: sized plans engage
            db.add("big", (i,))
            db.add("ok", (i,))
        cache: dict = {}
        assert check_constraints([constraint], db, EvalContext(),
                                 plan_cache=cache) == []
        assert cache  # the sized plan was cached
        db.add("big", (100,))
        violations = check_constraints([constraint], db, EvalContext(),
                                       plan_cache=cache)
        assert len(violations) == 1
