"""Relations, indexes, copy-on-write snapshots, index integrity."""

import pytest

from repro.datalog.database import Database, Relation
from repro.datalog.errors import IndexIntegrityError


class TestRelation:
    def test_add_dedupes(self):
        relation = Relation("p")
        assert relation.add(("a", 1))
        assert not relation.add(("a", 1))
        assert len(relation) == 1

    def test_discard(self):
        relation = Relation("p", [("a", 1)])
        assert relation.discard(("a", 1))
        assert not relation.discard(("a", 1))
        assert len(relation) == 0

    def test_lookup_builds_index(self):
        relation = Relation("p", [("a", 1), ("a", 2), ("b", 3)])
        assert sorted(relation.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]
        assert relation.lookup((0,), ("z",)) == []

    def test_index_maintained_on_add(self):
        relation = Relation("p", [("a", 1)])
        relation.lookup((0,), ("a",))  # build the index
        relation.add(("a", 2))
        assert sorted(relation.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]

    def test_index_maintained_on_discard(self):
        relation = Relation("p", [("a", 1), ("a", 2)])
        relation.lookup((0,), ("a",))
        relation.discard(("a", 1))
        assert relation.lookup((0,), ("a",)) == [("a", 2)]

    def test_multi_column_index(self):
        relation = Relation("p", [("a", 1, "x"), ("a", 2, "x"), ("a", 3, "y")])
        hits = relation.lookup((0, 2), ("a", "x"))
        assert set(hits) == {("a", 1, "x"), ("a", 2, "x")}
        assert relation.lookup((0, 2), ("b", "x")) == []

    def test_copy_is_independent(self):
        relation = Relation("p", [("a",)])
        clone = relation.copy()
        relation.add(("b",))
        assert ("b",) not in clone


class TestLookupStability:
    def test_lookup_view_unaffected_by_later_insert(self):
        relation = Relation("p", [("a", 1)])
        view = relation.lookup((0,), ("a",))
        relation.add(("a", 2))
        assert view == [("a", 1)]

    def test_scan_does_not_observe_mid_iteration_inserts(self):
        # Regression: deriving into the relation being scanned used to
        # extend the live bucket mid-iteration, so a semi-naive pass could
        # observe its own round's output.
        relation = Relation("r", [(0, 1), (1, 2), (2, 3)])
        relation.lookup((0,), (0,))  # build the index
        seen = []
        for row in relation.lookup((0,), (1,)):
            seen.append(row)
            relation.add((1, row[1] + 10))  # derive into the scanned bucket
        assert seen == [(1, 2)]
        assert (1, 12) in relation.tuples

    def test_match_literal_yields_stable_view(self):
        from repro.datalog.runtime import EvalContext, match_literal
        from repro.datalog.terms import Atom, Constant, Variable

        relation = Relation("r", [("a", 1), ("a", 2)])
        relation.lookup((0,), ("a",))
        atom = Atom("r", (Constant("a"), Variable("X")))
        seen = []
        for bindings in match_literal(atom, relation, {}, EvalContext()):
            seen.append(bindings["X"])
            relation.add(("a", bindings["X"] + 100))
        assert sorted(seen) == [1, 2]


class TestDiscardIntegrity:
    def test_discard_raises_on_missing_bucket(self):
        relation = Relation("p", [("a", 1)])
        relation.lookup((0,), ("a",))
        relation._indexes[(0,)].clear()  # simulate corruption
        with pytest.raises(IndexIntegrityError):
            relation.discard(("a", 1))

    def test_discard_raises_on_missing_bucket_entry(self):
        relation = Relation("p", [("a", 1), ("a", 2)])
        relation.lookup((0,), ("a",))
        key = relation.interner.id_of("a")
        row = relation.interner.row_of(("a", 1))
        relation._indexes[(0,)][key].remove(row)  # simulate corruption
        with pytest.raises(IndexIntegrityError):
            relation.discard(("a", 1))

    def test_healthy_discard_keeps_index_exact(self):
        relation = Relation("p", [("a", 1), ("a", 2), ("b", 3)])
        relation.lookup((0,), ("a",))
        assert relation.discard(("a", 1))
        assert relation.lookup((0,), ("a",)) == [("a", 2)]
        assert relation.discard(("a", 2))
        assert relation.lookup((0,), ("a",)) == []


class TestCopyOnWrite:
    def test_view_is_o1_until_mutation(self):
        relation = Relation("p", [("a",), ("b",)])
        view = relation.view()
        assert view.rows is relation.rows
        assert view.interner is relation.interner

    def test_mutating_original_leaves_view_intact(self):
        relation = Relation("p", [("a",)])
        view = relation.view()
        relation.add(("b",))
        assert view.tuples == {("a",)}
        assert relation.tuples == {("a",), ("b",)}

    def test_mutating_view_leaves_original_intact(self):
        relation = Relation("p", [("a",)])
        view = relation.view()
        view.discard(("a",))
        assert relation.tuples == {("a",)}
        assert len(view) == 0

    def test_wrap_never_mutates_the_donor_set(self):
        donor = {("a",), ("b",)}
        wrapped = Relation.wrap("d", donor)
        assert wrapped.lookup((0,), ("a",)) == [("a",)]
        wrapped.add(("c",))
        wrapped.discard(("a",))
        assert donor == {("a",), ("b",)}
        assert wrapped.tuples == {("b",), ("c",)}

    def test_shared_index_serves_both_handles(self):
        relation = Relation("p", [("a", 1)])
        relation.lookup((0,), ("a",))
        view = relation.view()
        assert view._indexes is relation._indexes
        relation.add(("a", 2))  # unshares: view keeps the old index
        assert view.lookup((0,), ("a",)) == [("a", 1)]
        assert sorted(relation.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]


class TestDatabase:
    def test_rel_creates_on_demand(self):
        database = Database()
        assert len(database.rel("p")) == 0
        assert "p" in database.relations

    def test_tuples_of_missing_is_empty(self):
        assert Database().tuples("nope") == set()

    def test_snapshot_restore(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("p", ("b",))
        database.add("q", ("c",))
        database.restore(snapshot)
        assert database.tuples("p") == {("a",)}
        assert database.tuples("q") == set()

    def test_snapshot_isolated_from_source(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("p", ("b",))
        assert snapshot.tuples("p") == {("a",)}

    def test_total_facts(self):
        database = Database()
        database.add("p", ("a",))
        database.add("q", ("b",))
        assert database.total_facts() == 2


class TestSnapshotRestoreCOW:
    def test_untouched_relation_identity_and_indexes_survive(self):
        from repro.datalog.engine import EvalStats

        database = Database()
        database.add("hot", ("a", 1))
        database.add("cold", ("x", 9))
        cold = database.rel("cold")
        cold.lookup((0,), ("x",))  # build an index on the untouched relation
        snapshot = database.snapshot()
        database.add("hot", ("b", 2))
        database.restore(snapshot)
        # identity survives the round-trip for the relation nobody touched
        assert database.rel("cold") is cold
        # and its index was neither dropped nor rebuilt: the next probe
        # counts as a hit, not a build
        stats = EvalStats()
        with stats.capture_indexes():
            assert database.rel("cold").lookup((0,), ("x",)) == [("x", 9)]
        assert (stats.index_builds, stats.index_hits) == (0, 1)

    def test_touched_relation_reverts_and_snapshot_stays_valid(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("p", ("b",))
        database.restore(snapshot)
        assert database.tuples("p") == {("a",)}
        database.add("p", ("c",))
        database.restore(snapshot)  # the same snapshot restores again
        assert database.tuples("p") == {("a",)}
        assert snapshot.tuples("p") == {("a",)}

    def test_relation_created_after_snapshot_is_dropped_on_restore(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("fresh", ("z",))
        database.restore(snapshot)
        assert database.get("fresh") is None

    def test_snapshot_shares_until_either_side_mutates(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        assert snapshot.rel("p").rows is database.rel("p").rows
        assert snapshot.interner is database.interner
        snapshot.add("p", ("b",))  # mutating the snapshot copy is also safe
        assert database.tuples("p") == {("a",)}
        assert snapshot.tuples("p") == {("a",), ("b",)}


class TestDistinctCounts:
    def test_scan_then_cache(self):
        relation = Relation("p", {(0, "a"), (1, "a"), (2, "b")})
        assert relation.distinct_count(0) == 3
        assert relation.distinct_count(1) == 2
        # cached: mutating invalidates, unchanged reads do not recompute
        assert relation._col_stats[0][1] == 3
        relation.add((3, "c"))
        assert relation.distinct_count(0) == 4
        assert relation.distinct_count(1) == 3
        relation.discard((3, "c"))
        assert relation.distinct_count(1) == 2

    def test_single_column_index_answers_without_scan(self):
        from repro.datalog.database import set_index_stats
        from repro.datalog.engine import EvalStats

        relation = Relation("p", {(i % 4, i) for i in range(20)})
        relation.lookup((0,), (1,))  # builds the (0,) index
        stats = EvalStats()
        previous = set_index_stats(stats)
        try:
            assert relation.distinct_count(0) == 4   # from the index
            assert relation.distinct_count(1) == 20  # needs a scan
        finally:
            set_index_stats(previous)
        assert stats.column_stats_built == 1

    def test_views_do_not_share_stat_caches(self):
        relation = Relation("p", {(0,), (1,)})
        assert relation.distinct_count(0) == 2
        view = relation.view()
        assert view.distinct_count(0) == 2
        view.add((2,))
        assert view.distinct_count(0) == 3
        assert relation.distinct_count(0) == 2

    def test_short_tuples_are_skipped(self):
        relation = Relation("p", {(0,), (1, 2)})
        assert relation.distinct_count(1) == 1
