"""Relations, indexes, snapshots."""

from repro.datalog.database import Database, Relation


class TestRelation:
    def test_add_dedupes(self):
        relation = Relation("p")
        assert relation.add(("a", 1))
        assert not relation.add(("a", 1))
        assert len(relation) == 1

    def test_discard(self):
        relation = Relation("p", [("a", 1)])
        assert relation.discard(("a", 1))
        assert not relation.discard(("a", 1))
        assert len(relation) == 0

    def test_lookup_builds_index(self):
        relation = Relation("p", [("a", 1), ("a", 2), ("b", 3)])
        assert sorted(relation.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]
        assert relation.lookup((0,), ("z",)) == []

    def test_index_maintained_on_add(self):
        relation = Relation("p", [("a", 1)])
        relation.lookup((0,), ("a",))  # build the index
        relation.add(("a", 2))
        assert sorted(relation.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]

    def test_index_maintained_on_discard(self):
        relation = Relation("p", [("a", 1), ("a", 2)])
        relation.lookup((0,), ("a",))
        relation.discard(("a", 1))
        assert relation.lookup((0,), ("a",)) == [("a", 2)]

    def test_multi_column_index(self):
        relation = Relation("p", [("a", 1, "x"), ("a", 2, "x"), ("a", 3, "y")])
        hits = relation.lookup((0, 2), ("a", "x"))
        assert set(hits) == {("a", 1, "x"), ("a", 2, "x")}
        assert relation.lookup((0, 2), ("b", "x")) == []

    def test_copy_is_independent(self):
        relation = Relation("p", [("a",)])
        clone = relation.copy()
        relation.add(("b",))
        assert ("b",) not in clone


class TestDatabase:
    def test_rel_creates_on_demand(self):
        database = Database()
        assert len(database.rel("p")) == 0
        assert "p" in database.relations

    def test_tuples_of_missing_is_empty(self):
        assert Database().tuples("nope") == set()

    def test_snapshot_restore(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("p", ("b",))
        database.add("q", ("c",))
        database.restore(snapshot)
        assert database.tuples("p") == {("a",)}
        assert database.tuples("q") == set()

    def test_snapshot_isolated_from_source(self):
        database = Database()
        database.add("p", ("a",))
        snapshot = database.snapshot()
        database.add("p", ("b",))
        assert snapshot.tuples("p") == {("a",)}

    def test_total_facts(self):
        database = Database()
        database.add("p", ("a",))
        database.add("q", ("b",))
        assert database.total_facts() == 2
