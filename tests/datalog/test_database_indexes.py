"""Property test: Relation hash indexes stay consistent under mutation.

Indexes are built lazily by ``lookup`` and maintained incrementally by
``add``/``discard``; ``copy``/``snapshot``/``restore`` share them
copy-on-write.  The invariant under any operation interleaving: ``lookup``
agrees with a brute-force scan of ``tuples``, and every maintained index
contains exactly the tuples of the relation, keyed correctly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database, Relation

VALUES = st.integers(0, 3)
ROWS = st.tuples(VALUES, VALUES)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), ROWS),
        st.tuples(st.just("discard"), ROWS),
        st.tuples(st.just("lookup"), st.tuples(
            st.sampled_from([(0,), (1,), (0, 1)]), ROWS)),
        st.tuples(st.just("copy"), st.none()),
        st.tuples(st.just("snapshot"), st.none()),
        st.tuples(st.just("restore"), st.none()),
    ),
    min_size=1, max_size=40,
)


def brute_lookup(tuples, positions, key):
    return sorted(row for row in tuples
                  if tuple(row[p] for p in positions) == key)


def check_relation(relation: Relation, model: set) -> None:
    assert relation.tuples == model
    for positions in ((0,), (1,), (0, 1)):
        for row in set(model) | {(0, 0), (3, 3)}:
            key = tuple(row[p] for p in positions)
            assert sorted(relation.lookup(positions, key)) == \
                brute_lookup(model, positions, key)


@given(OPS)
@settings(max_examples=60, deadline=None)
def test_relation_indexes_consistent_under_mutation(ops):
    relation = Relation("e")
    model: set = set()
    # Force eager index builds so adds/discards exercise maintenance.
    relation.lookup((0,), (0,))
    relation.lookup((1,), (0,))
    for op, arg in ops:
        if op == "add":
            assert relation.add(arg) == (arg not in model)
            model.add(arg)
        elif op == "discard":
            assert relation.discard(arg) == (arg in model)
            model.discard(arg)
        elif op == "lookup":
            positions, row = arg
            key = tuple(row[p] for p in positions)
            assert sorted(relation.lookup(positions, key)) == \
                brute_lookup(model, positions, key)
        elif op == "copy":
            relation = relation.copy()
        check_relation(relation, model)


@given(OPS, OPS)
@settings(max_examples=40, deadline=None)
def test_database_snapshot_restore_keeps_indexes_consistent(before, after):
    db = Database()
    model: set = set()

    def apply(ops):
        nonlocal model
        for op, arg in ops:
            if op == "add":
                db.add("e", arg)
                model.add(arg)
            elif op == "discard":
                db.discard("e", arg)
                model.discard(arg)
            elif op == "lookup":
                positions, row = arg
                key = tuple(row[p] for p in positions)
                assert sorted(db.rel("e").lookup(positions, key)) == \
                    brute_lookup(model, positions, key)
            elif op == "snapshot":
                pass  # handled below; plain ops here

    apply(before)
    snap = db.snapshot()
    saved = set(model)
    check_relation(db.rel("e"), model)

    apply(after)
    check_relation(db.rel("e"), model)

    db.restore(snap)
    model = saved
    check_relation(db.rel("e"), model)
    # and the restored relation keeps maintaining its (rebuilt) indexes
    db.add("e", (0, 0))
    model.add((0, 0))
    check_relation(db.rel("e"), model)


def assert_every_index_agrees(relation: Relation) -> None:
    """Every maintained index holds exactly the relation's id rows, and
    the interner is a bijection consistent with the stored rows."""
    interner = relation.interner
    for positions, index in relation._indexes.items():
        indexed = []
        for key, bucket in index.items():
            assert bucket, f"empty bucket left behind for {key!r}"
            for row in bucket:
                row_key = row[positions[0]] if len(positions) == 1 \
                    else tuple(row[p] for p in positions)
                assert row_key == key
                assert row in relation.rows
            indexed.extend(bucket)
        assert len(indexed) == len(relation.rows)
        assert set(indexed) == relation.rows
    # Interner agreement: every stored id maps to a value that maps back
    # to the same id (append-only bijection), and materializing the rows
    # reproduces exactly the value-level contents.
    assert len(interner.ids) == len(interner.values)
    for row in relation.rows:
        for term_id in row:
            value = interner.values[term_id]
            assert interner.ids[value] == term_id
    assert {interner.materialize_row(row) for row in relation.rows} \
        == relation.tuples


MIXED_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), ROWS),
        st.tuples(st.just("discard"), ROWS),
        st.tuples(st.just("lookup"), st.tuples(
            st.sampled_from([(0,), (1,), (0, 1)]), ROWS)),
        st.tuples(st.just("snapshot"), st.none()),
        st.tuples(st.just("restore"), st.none()),
    ),
    min_size=1, max_size=60,
)


@given(MIXED_OPS)
@settings(max_examples=80, deadline=None)
def test_interleaved_snapshot_restore_keeps_every_index_exact(ops):
    """The ISSUE-2 property: add/discard/snapshot/restore/lookup in any
    order, with every index checked against ``tuples`` after each step —
    on the live database *and* on every outstanding snapshot."""
    db = Database()
    model: set = set()
    db.rel("e").lookup((0,), (0,))   # eager index so mutations maintain it
    db.rel("e").lookup((1,), (0,))
    snapshots: list = []             # (snapshot_db, model_copy) stack

    for op, arg in ops:
        if op == "add":
            assert db.add("e", arg) == (arg not in model)
            model.add(arg)
        elif op == "discard":
            assert db.discard("e", arg) == (arg in model)
            model.discard(arg)
        elif op == "lookup":
            positions, row = arg
            key = tuple(row[p] for p in positions)
            assert sorted(db.rel("e").lookup(positions, key)) == \
                brute_lookup(model, positions, key)
        elif op == "snapshot":
            snapshots.append((db.snapshot(), set(model)))
        elif op == "restore":
            if snapshots:
                snapshot, saved = snapshots[-1]
                db.restore(snapshot)
                model = set(saved)
        relation = db.get("e")
        if relation is not None:
            assert relation.tuples == model
            assert_every_index_agrees(relation)
        for snapshot, saved in snapshots:
            snap_rel = snapshot.get("e")
            if snap_rel is not None:
                assert snap_rel.tuples == saved
                assert_every_index_agrees(snap_rel)

    # After the stream, every snapshot must still restore faithfully.
    for snapshot, saved in reversed(snapshots):
        db.restore(snapshot)
        relation = db.rel("e")
        assert relation.tuples == saved
        assert_every_index_agrees(relation)
        relation.lookup((0, 1), (0, 0))  # index building still works
        assert_every_index_agrees(relation)
