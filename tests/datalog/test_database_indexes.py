"""Property test: Relation hash indexes stay consistent under mutation.

Indexes are built lazily by ``lookup`` and maintained incrementally by
``add``/``discard``; ``copy``/``snapshot``/``restore`` drop them for lazy
rebuild.  The invariant under any operation interleaving: ``lookup``
agrees with a brute-force scan of ``tuples``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database, Relation

VALUES = st.integers(0, 3)
ROWS = st.tuples(VALUES, VALUES)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), ROWS),
        st.tuples(st.just("discard"), ROWS),
        st.tuples(st.just("lookup"), st.tuples(
            st.sampled_from([(0,), (1,), (0, 1)]), ROWS)),
        st.tuples(st.just("copy"), st.none()),
        st.tuples(st.just("snapshot"), st.none()),
        st.tuples(st.just("restore"), st.none()),
    ),
    min_size=1, max_size=40,
)


def brute_lookup(tuples, positions, key):
    return sorted(row for row in tuples
                  if tuple(row[p] for p in positions) == key)


def check_relation(relation: Relation, model: set) -> None:
    assert relation.tuples == model
    for positions in ((0,), (1,), (0, 1)):
        for row in set(model) | {(0, 0), (3, 3)}:
            key = tuple(row[p] for p in positions)
            assert sorted(relation.lookup(positions, key)) == \
                brute_lookup(model, positions, key)


@given(OPS)
@settings(max_examples=60, deadline=None)
def test_relation_indexes_consistent_under_mutation(ops):
    relation = Relation("e")
    model: set = set()
    # Force eager index builds so adds/discards exercise maintenance.
    relation.lookup((0,), (0,))
    relation.lookup((1,), (0,))
    for op, arg in ops:
        if op == "add":
            assert relation.add(arg) == (arg not in model)
            model.add(arg)
        elif op == "discard":
            assert relation.discard(arg) == (arg in model)
            model.discard(arg)
        elif op == "lookup":
            positions, row = arg
            key = tuple(row[p] for p in positions)
            assert sorted(relation.lookup(positions, key)) == \
                brute_lookup(model, positions, key)
        elif op == "copy":
            relation = relation.copy()
        check_relation(relation, model)


@given(OPS, OPS)
@settings(max_examples=40, deadline=None)
def test_database_snapshot_restore_keeps_indexes_consistent(before, after):
    db = Database()
    model: set = set()

    def apply(ops):
        nonlocal model
        for op, arg in ops:
            if op == "add":
                db.add("e", arg)
                model.add(arg)
            elif op == "discard":
                db.discard("e", arg)
                model.discard(arg)
            elif op == "lookup":
                positions, row = arg
                key = tuple(row[p] for p in positions)
                assert sorted(db.rel("e").lookup(positions, key)) == \
                    brute_lookup(model, positions, key)
            elif op == "snapshot":
                pass  # handled below; plain ops here

    apply(before)
    snap = db.snapshot()
    saved = set(model)
    check_relation(db.rel("e"), model)

    apply(after)
    check_relation(db.rel("e"), model)

    db.restore(snap)
    model = saved
    check_relation(db.rel("e"), model)
    # and the restored relation keeps maintaining its (rebuilt) indexes
    db.add("e", (0, 0))
    model.add((0, 0))
    check_relation(db.rel("e"), model)
