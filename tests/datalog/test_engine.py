"""Semi-naive engine: joins, recursion, negation, aggregates, provenance."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import (
    EvalStats,
    ProvenanceStore,
    evaluate,
    normalize_rules,
)
from repro.datalog.errors import SafetyError
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule


def rules_of(source):
    return [s for s in parse_statements(source) if isinstance(s, Rule)]


def run(source, facts, context=None):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    evaluate(rules_of(source), database, context or EvalContext())
    return database


class TestBasics:
    def test_projection(self):
        database = run("p(X) <- e(X,_).", {"e": [("a", 1), ("b", 2)]})
        assert database.tuples("p") == {("a",), ("b",)}

    def test_join(self):
        database = run("p(X,Z) <- e(X,Y), e(Y,Z).",
                       {"e": [("a", "b"), ("b", "c")]})
        assert database.tuples("p") == {("a", "c")}

    def test_self_join_with_shared_var(self):
        database = run("loop(X) <- e(X,X).",
                       {"e": [("a", "a"), ("a", "b")]})
        assert database.tuples("loop") == {("a",)}

    def test_constants_filter(self):
        database = run('p(X) <- e(X,"k").', {"e": [("a", "k"), ("b", "z")]})
        assert database.tuples("p") == {("a",)}

    def test_transitive_closure(self):
        database = run(
            "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z).",
            {"e": [("a", "b"), ("b", "c"), ("c", "d")]})
        assert ("a", "d") in database.tuples("r")
        assert len(database.tuples("r")) == 6

    def test_mutual_recursion(self):
        database = run("""
            even(X) <- zero(X).
            even(Y) <- odd(X), succ(X,Y).
            odd(Y) <- even(X), succ(X,Y).
        """, {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]})
        assert database.tuples("even") == {(0,), (2,), (4,), (6,)}
        assert database.tuples("odd") == {(1,), (3,), (5,)}

    def test_multi_head_rule(self):
        database = run("p(X), q(X) <- e(X).", {"e": [("a",)]})
        assert database.tuples("p") == {("a",)}
        assert database.tuples("q") == {("a",)}

    def test_idempotent_re_evaluation(self):
        database = run("p(X) <- e(X).", {"e": [("a",)]})
        before = {name: set(rel.tuples) for name, rel in database.relations.items()}
        evaluate(rules_of("p(X) <- e(X)."), database, EvalContext())
        after = {name: set(rel.tuples) for name, rel in database.relations.items()}
        assert before == after


class TestComparisonsAndExpressions:
    def test_filter(self):
        database = run("big(X) <- v(X), X > 2.", {"v": [(1,), (3,)]})
        assert database.tuples("big") == {(3,)}

    def test_assignment(self):
        database = run("inc(X,Y) <- v(X), Y = X + 1.", {"v": [(1,), (2,)]})
        assert database.tuples("inc") == {(1, 2), (2, 3)}

    def test_expression_in_head(self):
        database = run("double(X * 2) <- v(X).", {"v": [(3,)]})
        assert database.tuples("double") == {(6,)}

    def test_equality_as_test(self):
        database = run("same(X,Y) <- v(X), v(Y), X = Y.",
                       {"v": [(1,), (2,)]})
        assert database.tuples("same") == {(1, 1), (2, 2)}

    def test_string_comparison(self):
        database = run('first(X) <- v(X), X < "m".',
                       {"v": [("apple",), ("zebra",)]})
        assert database.tuples("first") == {("apple",)}


class TestNegation:
    def test_basic(self):
        database = run("only(X) <- v(X), !w(X).",
                       {"v": [("a",), ("b",)], "w": [("b",)]})
        assert database.tuples("only") == {("a",)}

    def test_negation_over_derived(self):
        database = run("""
            r(X,Y) <- e(X,Y).
            r(X,Z) <- r(X,Y), e(Y,Z).
            unreach(X,Y) <- n(X), n(Y), !r(X,Y).
        """, {"e": [("a", "b")], "n": [("a",), ("b",)]})
        assert ("b", "a") in database.tuples("unreach")
        assert ("a", "b") not in database.tuples("unreach")

    def test_negation_with_local_existential(self):
        # !e(X,_): X has no outgoing edge at all
        database = run("sink(X) <- n(X), !e(X,_).",
                       {"n": [("a",), ("b",)], "e": [("a", "b")]})
        assert database.tuples("sink") == {("b",)}

    def test_negation_variable_shared_with_later_literal_reorders(self):
        # Y is shared with u(Y) written *after* the negation — the planner
        # must schedule u(Y) first; the rule is safe.
        database = run("p(X) <- v(X), !w(X,Y), u(Y).",
                       {"v": [("a",)], "u": [(1,)], "w": []})
        assert database.tuples("p") == {("a",)}

    def test_negation_only_variable_in_head_rejected(self):
        # Y occurs only inside the negation and in the head: unsafe.
        with pytest.raises(SafetyError):
            run("p(X,Y) <- v(X), !w(X,Y).", {"v": [("a",)]})


class TestAggregates:
    def test_count_groups(self):
        database = run("deg(X,N) <- agg<<N = count(Y)>> e(X,Y).",
                       {"e": [("a", 1), ("a", 2), ("b", 1)]})
        assert database.tuples("deg") == {("a", 2), ("b", 1)}

    def test_total(self):
        database = run("sum(X,S) <- agg<<S = total(V)>> w(X,V).",
                       {"w": [("a", 3), ("a", 4), ("b", 5)]})
        assert database.tuples("sum") == {("a", 7), ("b", 5)}

    def test_min_max(self):
        facts = {"w": [("a", 3), ("a", 4)]}
        low = run("m(X,V) <- agg<<V = min(W)>> w(X,W).", facts)
        high = run("m(X,V) <- agg<<V = max(W)>> w(X,W).", facts)
        assert low.tuples("m") == {("a", 3)}
        assert high.tuples("m") == {("a", 4)}

    def test_count_over_derived(self):
        database = run("""
            r(X,Y) <- e(X,Y).
            r(X,Z) <- r(X,Y), e(Y,Z).
            reach_count(X,N) <- agg<<N = count(Y)>> r(X,Y).
        """, {"e": [("a", "b"), ("b", "c")]})
        assert ("a", 2) in database.tuples("reach_count")

    def test_aggregate_feeds_rules(self):
        database = run("""
            deg(X,N) <- agg<<N = count(Y)>> e(X,Y).
            hub(X) <- deg(X,N), N >= 2.
        """, {"e": [("a", 1), ("a", 2), ("b", 1)]})
        assert database.tuples("hub") == {("a",)}

    def test_empty_group_no_result(self):
        database = run("deg(X,N) <- agg<<N = count(Y)>> e(X,Y).", {"e": []})
        assert database.tuples("deg") == set()

    def test_global_aggregate(self):
        database = run("tot(N) <- agg<<N = count(X)>> v(X).",
                       {"v": [(1,), (2,), (3,)]})
        assert database.tuples("tot") == {(3,)}


class TestSafety:
    def test_unbound_head_variable(self):
        with pytest.raises(SafetyError):
            run("p(X,Y) <- e(X).", {"e": [("a",)]})

    def test_unschedulable_comparison(self):
        with pytest.raises(SafetyError):
            run("p(X) <- e(X), Y > 3.", {"e": [("a",)]})


class TestProvenance:
    def test_edb_and_rule_provenance(self):
        database = Database()
        database.add("e", ("a", "b"))
        database.add("e", ("b", "c"))
        provenance = ProvenanceStore()
        for fact in database.tuples("e"):
            provenance.record_edb("e", fact)
        evaluate(rules_of("r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."),
                 database, EvalContext(), provenance=provenance)
        derivations = provenance.of("r", ("a", "c"))
        assert derivations
        rule_label, supports = next(iter(derivations))
        assert ("e", ("b", "c")) in supports or ("e", ("a", "b")) in supports

    def test_stats_counting(self):
        database = Database()
        for i in range(5):
            database.add("e", (i, i + 1))
        stats = EvalStats()
        evaluate(rules_of("r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."),
                 database, EvalContext(), stats=stats)
        assert stats.new_facts == len(database.tuples("r"))
        assert stats.derivations >= stats.new_facts
