"""EvalStats instrumentation: exact structural counts on fixed workloads.

These pin the engine's *shape* — rule firings, semi-naive delta drain,
index traffic — so an evaluation-strategy regression (e.g. re-deriving
old facts, losing an index) fails structurally even when wall-clock
noise would hide it.

The workload: transitive closure of the chain 0→1→2→3→4→5.

* ``base`` fires once per edge (5).
* The initial pass runs ``base`` (5 length-1 paths) then ``step`` over
  them (4 length-2 paths) — a seed delta of 9.
* Semi-naive rounds then derive paths of length 3, 4, 5 from deltas of
  size 9, 3, 2, then drain the final delta of 1 deriving nothing:
  4 rounds, ``step`` firing 4+3+2+1 = 10 more times (14 total).
"""

from repro.datalog.database import Database
from repro.datalog.engine import EvalStats, StratumStats, evaluate
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule

TC = "base: r(X,Y) <- e(X,Y). step: r(X,Z) <- r(X,Y), e(Y,Z)."


def run_chain(n=5):
    rules = [s for s in parse_statements(TC) if isinstance(s, Rule)]
    db = Database()
    for i in range(n):
        db.add("e", (i, i + 1))
    stats = EvalStats()
    evaluate(rules, db, EvalContext(stats=stats), stats=stats)
    return db, stats


class TestExactCounts:
    def test_rule_firings(self):
        _, stats = run_chain()
        assert stats.rule_firings == {"base": 5, "step": 14}

    def test_totals(self):
        db, stats = run_chain()
        assert len(db.tuples("r")) == 15          # C(6,2) pairs
        assert stats.new_facts == 15
        assert stats.derivations == 19            # 5 + 14
        assert stats.rounds == 4

    def test_stratum_trail(self):
        _, stats = run_chain()
        assert len(stats.strata) == 1
        record = stats.strata[0]
        assert record.number == 0
        assert record.rounds == 4
        assert record.new_facts == 15
        assert record.delta_sizes == [9, 3, 2, 1]
        assert record.elapsed > 0.0

    def test_index_counters(self):
        _, stats = run_chain()
        # e is indexed on its first column once, during ``step``'s
        # initial pass.  The flat join core prefetches the index once per
        # rule application (probes are then plain dict lookups), so the
        # four semi-naive delta applications of ``step`` count one hit
        # each; per-probe traffic shows up in ``id_joins`` instead.
        assert stats.index_builds == 1
        assert stats.index_hits == 4
        assert stats.id_joins == 20           # 5 initial + 9 + 3 + 2 + 1

    def test_scan_counters(self):
        _, stats = run_chain()
        # full scans: e (base, initial pass), r (step, initial pass), and
        # one unbound delta scan per semi-naive round.
        assert stats.full_scans == 6
        assert stats.literal_scans == 26

    def test_edb_load_interner_counters(self):
        db = Database()
        stats = EvalStats()
        with stats.capture_indexes():
            for i in range(5):
                db.add("e", (i, i + 1))
        # terms 0..5 allocate six dense ids; each chain fact after the
        # first re-sees its predecessor's endpoint.
        assert stats.terms_interned == 6
        assert stats.intern_hits == 4
        assert len(db.interner) == 6

    def test_evaluation_stays_in_id_space(self):
        _, stats = run_chain()
        # The tentpole invariant: a constant-free program touches the
        # interner zero times during evaluation — derivation, dedup,
        # delta exchange and merge all run over id rows.  Values are
        # produced exactly once, at the output boundary: one
        # materialization per added r fact.
        assert stats.terms_interned == 0
        assert stats.intern_hits == 0
        assert stats.value_materializations == 15

    def test_head_constants_intern_once_per_application(self):
        rules = [s for s in parse_statements("flagged: r(X, flag) <- e(X,Y).")
                 if isinstance(s, Rule)]
        db = Database()
        for i in range(3):
            db.add("e", (i, i + 1))
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        # the head constant is resolved through the interner when the
        # rule's id spec is built — one application, one fresh term
        assert stats.terms_interned == 1
        assert stats.intern_hits == 0
        assert stats.value_materializations == 3
        assert db.tuples("r") == {(i, "flag") for i in range(3)}


class TestPlannerCounters:
    """Exact counts for the cost-based planner instrumentation.

    The chain workload builds three plans — one full-pass plan per rule
    plus ``step``'s delta plan — and serves the remaining three semi-naive
    rounds from the band-keyed cache.  All relations are tiny, so the
    cost model stays out of the way and nothing reorders.
    """

    def test_chain_plan_counts(self):
        _, stats = run_chain()
        assert stats.plans_built == 3
        assert stats.plan_cache_hits == 3
        assert stats.reorder_wins == 0

    def test_cost_model_reorders_skewed_join(self):
        # big is large enough (>= 64) to engage the cost model; greedy
        # order would scan all of big first, the cost model starts from
        # small and probes big twice instead.
        rules = [s for s in parse_statements("sel: h(X) <- big(X), small(X).")
                 if isinstance(s, Rule)]
        db = Database()
        for i in range(80):
            db.add("big", (i,))
        db.add("small", (1,))
        db.add("small", (2,))
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        assert db.tuples("h") == {(1,), (2,)}
        assert stats.plans_built == 1
        assert stats.reorder_wins == 1
        # one full scan of small, then one indexed probe of big per row
        assert stats.full_scans == 1
        assert stats.literal_scans == 3
        assert stats.rule_firings == {"sel": 2}

    def test_margin_keeps_greedy_order_on_near_ties(self):
        # 100 vs 30: cheaper, but not 4x cheaper once a column is bound —
        # the greedy (source-order) plan stands and nothing reorders.
        rules = [s for s in parse_statements("h(X) <- p(X), q(X).")
                 if isinstance(s, Rule)]
        db = Database()
        for i in range(100):
            db.add("p", (i,))
        for i in range(30):
            db.add("q", (i,))
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        assert db.tuples("h") == {(i,) for i in range(30)}
        assert stats.reorder_wins == 0

    def test_distinct_counts_beat_fixed_selectivity(self):
        # Both dup and uniq have 100 facts and one bound column, so the
        # fixed-0.1 model scores them identically and the greedy source
        # order (dup first) would stand.  Real distinct counts see that
        # X selects 50 dup rows but only 1 uniq row, and reorder.
        rules = [s for s in parse_statements(
            "sel: h(Y) <- a(X), dup(X,Y), uniq(X,Y).")
            if isinstance(s, Rule)]
        db = Database()
        db.add("a", (0,))
        db.add("a", (1,))
        for i in range(100):
            db.add("dup", (i % 2, i))     # col 0 distinct: 2
            db.add("uniq", (i, i))        # col 0 distinct: 100
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        assert db.tuples("h") == {(0,), (1,)}
        assert stats.plans_built == 1
        assert stats.reorder_wins == 1
        # one full scan of a, then per a-row one uniq probe and one fully
        # bound dup membership probe — not 50 dup rows per a-row.
        assert stats.full_scans == 1
        assert stats.literal_scans == 5
        # the planner computed distinct counts for dup/uniq column 0 once
        # each (cached on the relation afterwards).
        assert stats.column_stats_built == 2
        assert stats.rule_firings == {"sel": 2}

    def test_magic_overlay_feeds_live_distinct_counts(self):
        """The magic-sets overlay plans with *live* distinct counts.

        The skewed dup/uniq join from the planner test, behind a magic
        rewrite: the adorned rule must still reorder on real distinct
        counts (not the 0.1 fallback), the planner work must be
        attributed to the caller's stats, and — because overlay views
        share their column statistics with the donor relations — a
        second query must *not* re-scan the EDB columns.
        """
        from repro.datalog.magic import query_magic
        from repro.datalog.terms import Atom, Variable

        rules = [s for s in parse_statements(
            "sel: h(Y) <- a(X), dup(X,Y), uniq(X,Y).")
            if isinstance(s, Rule)]
        db = Database()
        db.add("a", (0,))
        db.add("a", (1,))
        for i in range(100):
            db.add("dup", (i % 2, i))     # col 0 distinct: 2
            db.add("uniq", (i, i))        # col 0 distinct: 100
        stats = EvalStats()
        context = EvalContext(stats=stats)
        query = Atom("h", (Variable("Y"),))

        first = query_magic(rules, db, query, context)
        assert first == {(0,), (1,)}
        # dup[0] and uniq[0] were each scanned exactly once, and the
        # cost model used them to reorder the adorned join.
        assert stats.column_stats_built == 2
        assert stats.plans_built == 1
        assert stats.reorder_wins == 1
        assert stats.magic_programs_built == 1
        assert stats.magic_cache_hits == 0

        second = query_magic(rules, db, query, context)
        assert second == first
        # fresh overlay, but the rewrite AND its join plan are served
        # from the magic program cache (the EngineRule objects persist,
        # so their band-keyed plans do too) and the distinct counts from
        # the stats shared with the donor relations: a repeat point
        # query neither re-scans EDB columns nor replans.
        assert stats.column_stats_built == 2
        assert stats.plans_built == 1
        assert stats.reorder_wins == 1
        assert stats.magic_programs_built == 1
        assert stats.magic_cache_hits == 1
        assert stats.plan_cache_hits >= 1

    def test_counters_survive_merge_diff_and_as_dict(self):
        _, stats = run_chain()
        merged = EvalStats()
        merged.merge(stats)
        merged.merge(stats)
        assert merged.plans_built == 6
        assert merged.plan_cache_hits == 6
        before = merged.copy()
        merged.merge(stats)
        delta = merged.diff(before)
        assert delta.plans_built == 3
        rendered = merged.as_dict()
        assert rendered["plans_built"] == 9
        assert rendered["plan_cache_hits"] == 9
        assert rendered["reorder_wins"] == 0


class TestStatsPlumbing:
    def test_merge_accumulates_everything(self):
        _, one = run_chain()
        _, two = run_chain()
        merged = EvalStats()
        merged.merge(one)
        merged.merge(two)
        assert merged.rule_firings == {"base": 10, "step": 28}
        assert merged.derivations == 38
        assert merged.index_builds == 2
        assert len(merged.strata) == 2
        assert merged.as_dict()["rule_firings"] == {"base": 10, "step": 28}

    def test_stratum_trail_is_bounded(self):
        stats = EvalStats()
        for i in range(EvalStats.MAX_STRATA + 10):
            stats.record_stratum(StratumStats(number=i))
        assert len(stats.strata) == EvalStats.MAX_STRATA
        assert stats.strata[0].number == 10     # oldest dropped

    def test_as_dict_is_json_safe(self):
        import json

        _, stats = run_chain()
        rendered = json.dumps(stats.as_dict())
        assert '"delta_sizes": [9, 3, 2, 1]' in rendered

    def test_capture_indexes_restores_previous_sink(self):
        from repro.datalog import database

        outer, inner = EvalStats(), EvalStats()
        relation = database.Relation("e", {(1, 2), (3, 4)})
        with outer.capture_indexes():
            with inner.capture_indexes():
                relation.lookup((0,), (1,))
            relation.lookup((0,), (3,))
        relation.lookup((0,), (1,))  # no sink installed: uncounted
        assert (inner.index_builds, inner.index_hits) == (1, 0)
        assert (outer.index_builds, outer.index_hits) == (0, 1)


class TestCopyDiff:
    def test_diff_isolates_a_region(self):
        _, stats = run_chain()
        before = stats.copy()
        _, more = run_chain(3)
        stats.merge(more)
        delta = stats.diff(before)
        assert delta.rule_firings == more.rule_firings
        assert delta.derivations == more.derivations
        assert delta.new_facts == more.new_facts
        assert len(delta.strata) == 1
        # the original keeps accumulating; the snapshot is untouched
        assert before.rule_firings == {"base": 5, "step": 14}

    def test_incremental_pass_records_seed_delta(self):
        from repro.datalog.engine import (
            normalize_rules, propagate_insertions,
        )
        from repro.datalog.stratify import stratify

        rules = normalize_rules(
            [s for s in parse_statements(TC) if isinstance(s, Rule)])
        db = Database()
        for i in range(5):
            db.add("e", (i, i + 1))
        evaluate(rules, db, EvalContext())
        strata = stratify(rules)
        stats = EvalStats()
        db.add("e", (5, 6))
        propagate_insertions(strata, db, EvalContext(), {"e": {(5, 6)}},
                             edb_facts=lambda p: set(), stats=stats)
        record = stats.strata[-1]
        assert record.delta_sizes[0] == 1        # the seed edge itself
        assert record.rounds == len(record.delta_sizes)
        assert stats.new_facts == 6              # r(i,6) for i in 0..5
