"""Flat (register-based) plans over mixed bodies: parity with the
generic pipeline.

PR 2 compiled all-literal bodies to :class:`FlatPlan`; bodies containing
comparisons, builtin calls or expression-valued literal keys fell back to
the dict-based path.  These tests pin the extended coverage: every mixed
body below must (a) compile flat and (b) produce exactly the facts the
generic pipeline produces.  The generic run is forced by attaching a
provenance store, which :func:`apply_rule` never routes through the flat
path.
"""

from repro.datalog.builtins import standard_registry
from repro.datalog.database import Database
from repro.datalog.engine import (
    EngineRule,
    ProvenanceStore,
    apply_rule,
    normalize_rules,
)
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext, build_plan
from repro.datalog.terms import Rule
from repro.meta.quote import compile_rule


def engine_rule(source: str) -> EngineRule:
    (statement,) = [s for s in parse_statements(source)
                    if isinstance(s, Rule)]
    compiled = compile_rule(statement, principal=None,
                            builtins=standard_registry())
    (rule,) = normalize_rules([compiled])
    return rule


def both_paths(source: str, facts: dict) -> tuple[set, set]:
    """(flat results, generic results) of one rule over the same facts."""
    results = []
    for provenance in (None, ProvenanceStore()):
        rule = engine_rule(source)
        db = Database()
        for pred, rows in facts.items():
            for row in rows:
                db.add(pred, row)
        context = EvalContext(builtins=standard_registry())
        results.append(apply_rule(rule, db, context, provenance=provenance))
    return results[0], results[1]


def assert_parity(source: str, facts: dict, expected: set) -> None:
    rule = engine_rule(source)
    plan = build_plan(rule.body, builtins=standard_registry())
    assert plan.flat() is not None, f"no flat plan for {source!r}"
    flat_out, generic_out = both_paths(source, facts)
    assert flat_out == generic_out == expected


class TestComparisonSteps:
    def test_filter_comparison(self):
        assert_parity(
            "h(X) <- a(X), X > 3.",
            {"a": [(1,), (4,), (9,)]},
            {(4,), (9,)},
        )

    def test_equality_assignment_with_expr(self):
        assert_parity(
            "h(X,Y) <- a(X), Y = X * 2 + 1.",
            {"a": [(1,), (3,)]},
            {(1, 3), (3, 7)},
        )

    def test_assignment_feeds_later_join(self):
        assert_parity(
            "h(X,Z) <- a(X), Y = X + 1, b(Y,Z).",
            {"a": [(1,), (5,)], "b": [(2, "two"), (6, "six"), (9, "no")]},
            {(1, "two"), (5, "six")},
        )

    def test_filter_between_two_bound_sides(self):
        assert_parity(
            "h(X,Y) <- a(X), b(Y), X = Y.",
            {"a": [(1,), (2,)], "b": [(2,), (3,)]},
            {(2, 2)},
        )


class TestBuiltinSteps:
    def test_builtin_output_binds_fresh_variable(self):
        assert_parity(
            'h(S,N) <- a(S), strlen(S,N).',
            {"a": [("ab",), ("wxyz",)]},
            {("ab", 2), ("wxyz", 4)},
        )

    def test_builtin_output_checks_bound_variable(self):
        assert_parity(
            'h(S) <- a(S,N), strlen(S,N).',
            {"a": [("ab", 2), ("ab", 3), ("xyz", 3)]},
            {("ab",), ("xyz",)},
        )

    def test_type_guard_builtin(self):
        assert_parity(
            "h(X) <- a(X), int(X).",
            {"a": [(1,), ("s",), (True,), (7,)]},
            {(1,), (7,)},
        )

    def test_list_builtin_chain(self):
        assert_parity(
            "h(L2) <- a(X), list_nil(L), list_cons(X,L,L2).",
            {"a": [(1,), (2,)]},
            {((1,),), ((2,),)},
        )


class TestExprLiteralKeys:
    def test_expr_valued_probe_key(self):
        assert_parity(
            "h(X,Y) <- a(X), b(X + 1, Y).",
            {"a": [(1,), (2,)], "b": [(2, "p"), (3, "q"), (5, "r")]},
            {(1, "p"), (2, "q")},
        )

    def test_negated_literal_with_expr_key(self):
        assert_parity(
            "h(X) <- a(X), !b(X + 1).",
            {"a": [(1,), (2,)], "b": [(2,)]},
            {(2,)},
        )


class TestMixedEverything:
    def test_comparison_builtin_and_join(self):
        assert_parity(
            'h(S,N,Z) <- a(S), strlen(S,N), N > 1, b(N,Z).',
            {"a": [("x",), ("ab",), ("abc",)],
             "b": [(2, "two"), (3, "three")]},
            {("ab", 2, "two"), ("abc", 3, "three")},
        )

    def test_stats_still_counted_on_flat_path(self):
        from repro.datalog.engine import EvalStats, evaluate

        rules = [s for s in parse_statements(
            "r: h(X) <- a(X), X > 0, b(X).") if isinstance(s, Rule)]
        db = Database()
        for i in (-1, 1, 2):
            db.add("a", (i,))
        db.add("b", (1,))
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        assert db.tuples("h") == {(1,)}
        assert stats.rule_firings == {"r": 1}
        assert stats.literal_scans > 0
