"""Incremental maintenance: insertions (semi-naive) and deletions (DRed)
always agree with from-scratch recomputation."""

import random

from hypothesis import given, settings, strategies as st

from repro.datalog.database import Database
from repro.datalog.engine import evaluate, normalize_rules, propagate_insertions
from repro.datalog.incremental import propagate_deletions
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.stratify import stratify
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."
TC_NEG = TC + " un(X,Y) <- n(X), n(Y), !r(X,Y)."
TC_AGG = TC + " cnt(X,N) <- agg<<N = count(Y)>> r(X,Y)."


def rules_of(source):
    return [s for s in parse_statements(source) if isinstance(s, Rule)]


class Harness:
    """A tiny EDB-tracking wrapper around the raw engine primitives."""

    def __init__(self, source):
        self.rules = normalize_rules(rules_of(source))
        self.strata = stratify(self.rules)
        self.context = EvalContext()
        self.db = Database()
        self.edb: dict[str, set] = {}
        evaluate(self.rules, self.db, self.context)

    def insert(self, pred, fact):
        fact = tuple(fact)
        self.edb.setdefault(pred, set()).add(fact)
        if self.db.add(pred, fact):
            propagate_insertions(self.strata, self.db, self.context,
                                 {pred: {fact}},
                                 edb_facts=lambda p: self.edb.get(p, set()))

    def delete(self, pred, fact):
        fact = tuple(fact)
        self.edb.get(pred, set()).discard(fact)
        self.db.discard(pred, fact)
        propagate_deletions(self.strata, self.db, self.context,
                            {pred: {fact}},
                            edb_facts=lambda p: self.edb.get(p, set()))

    def scratch_model(self):
        fresh = Database()
        for pred, facts in self.edb.items():
            for fact in facts:
                fresh.add(pred, fact)
        evaluate(self.rules, fresh, EvalContext())
        return {n: set(r.tuples) for n, r in fresh.relations.items() if r.tuples}

    def model(self):
        return {n: set(r.tuples) for n, r in self.db.relations.items() if r.tuples}

    def check(self):
        assert self.model() == self.scratch_model()


class TestInsertions:
    def test_chain_extension(self):
        harness = Harness(TC)
        for i in range(5):
            harness.insert("e", (i, i + 1))
        harness.check()
        assert (0, 5) in harness.db.tuples("r")

    def test_insert_into_negation_stratum(self):
        harness = Harness(TC_NEG)
        harness.insert("n", ("a",))
        harness.insert("n", ("b",))
        harness.check()
        assert ("a", "b") in harness.db.tuples("un")
        harness.insert("e", ("a", "b"))
        harness.check()
        # the new edge must *retract* the unreachability fact
        assert ("a", "b") not in harness.db.tuples("un")

    def test_insert_updates_aggregate(self):
        harness = Harness(TC_AGG)
        harness.insert("e", ("a", "b"))
        harness.check()
        harness.insert("e", ("b", "c"))
        harness.check()
        assert ("a", 2) in harness.db.tuples("cnt")
        assert ("a", 1) not in harness.db.tuples("cnt")

    def test_duplicate_insert_noop(self):
        harness = Harness(TC)
        harness.insert("e", ("a", "b"))
        before = harness.model()
        harness.insert("e", ("a", "b"))
        assert harness.model() == before


class TestDeletions:
    def test_delete_breaks_chain(self):
        harness = Harness(TC)
        for i in range(4):
            harness.insert("e", (i, i + 1))
        harness.delete("e", (1, 2))
        harness.check()
        assert (0, 3) not in harness.db.tuples("r")
        assert (2, 4) in harness.db.tuples("r")

    def test_delete_with_alternative_derivation_keeps_fact(self):
        harness = Harness(TC)
        harness.insert("e", ("a", "b"))
        harness.insert("e", ("b", "c"))
        harness.insert("e", ("a", "c"))     # alternative path a→c
        harness.delete("e", ("a", "b"))
        harness.check()
        assert ("a", "c") in harness.db.tuples("r")
        assert ("a", "b") not in harness.db.tuples("r")

    def test_delete_on_cycle(self):
        harness = Harness(TC)
        for edge in [("a", "b"), ("b", "a")]:
            harness.insert("e", edge)
        harness.delete("e", ("b", "a"))
        harness.check()
        assert harness.db.tuples("r") == {("a", "b")}

    def test_delete_updates_negation(self):
        harness = Harness(TC_NEG)
        for fact in [("a",), ("b",)]:
            harness.insert("n", fact)
        harness.insert("e", ("a", "b"))
        assert ("a", "b") not in harness.db.tuples("un")
        harness.delete("e", ("a", "b"))
        harness.check()
        assert ("a", "b") in harness.db.tuples("un")

    def test_delete_updates_aggregate(self):
        harness = Harness(TC_AGG)
        harness.insert("e", ("a", "b"))
        harness.insert("e", ("a", "c"))
        harness.delete("e", ("a", "c"))
        harness.check()
        assert ("a", 1) in harness.db.tuples("cnt")

    def test_edb_fact_also_derivable_survives(self):
        harness = Harness(TC)
        harness.insert("e", ("a", "b"))
        harness.insert("r", ("a", "b"))     # also asserted directly
        harness.delete("e", ("a", "b"))
        harness.check()
        assert ("a", "b") in harness.db.tuples("r")


@given(st.integers(0, 2 ** 30))
@settings(max_examples=25, deadline=None)
def test_property_mixed_stream_matches_scratch(seed):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(rng.randint(2, 6))]
    harness = Harness(TC_NEG)
    for node in nodes:
        harness.insert("n", (node,))
    alive: set = set()
    for _ in range(rng.randint(3, 14)):
        if alive and rng.random() < 0.4:
            victim = rng.choice(sorted(alive))
            alive.discard(victim)
            harness.delete("e", victim)
        else:
            edge = (rng.choice(nodes), rng.choice(nodes))
            alive.add(edge)
            harness.insert("e", edge)
        harness.check()


@given(st.integers(0, 2 ** 30))
@settings(max_examples=15, deadline=None)
def test_property_aggregate_stream_matches_scratch(seed):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(rng.randint(2, 5))]
    harness = Harness(TC_AGG)
    alive: set = set()
    for _ in range(rng.randint(3, 10)):
        if alive and rng.random() < 0.35:
            victim = rng.choice(sorted(alive))
            alive.discard(victim)
            harness.delete("e", victim)
        else:
            edge = (rng.choice(nodes), rng.choice(nodes))
            alive.add(edge)
            harness.insert("e", edge)
        harness.check()


class TestPlanInvalidation:
    """Deletion-heavy maintenance must evict stale band-keyed plans.

    A relation shrinking across cardinality bands leaves its rules'
    cached plans keyed to bands that can never be served again; the
    deletion propagator's invalidation hook drops them (observable as
    ``EvalStats.plans_evicted``) so they stop squatting in the FIFO
    plan cache.
    """

    def _chain(self, n=100):
        from repro.datalog.engine import EvalStats

        rules = normalize_rules(rules_of(
            "base: r(X,Y) <- e(X,Y). step: r(X,Z) <- r(X,Y), e(Y,Z)."))
        db = Database()
        edb = {"e": set()}
        for i in range(n):
            db.add("e", (i, i + 1))
            edb["e"].add((i, i + 1))
        stats = EvalStats()
        evaluate(rules, db, EvalContext(stats=stats), stats=stats)
        return rules, db, edb, stats

    def test_band_drop_evicts_stale_plans(self):
        rules, db, edb, stats = self._chain()
        step = next(r for r in rules if r.label == "step")
        big_band_keys = [k for k in step._plans if k[1] is not None]
        assert big_band_keys  # the 100-fact chain engaged the cost model

        deleted = {"e": {(i, i + 1) for i in range(10, 100)}}
        for fact in deleted["e"]:
            db.discard("e", fact)
            edb["e"].discard(fact)
        propagate_deletions(stratify(rules), db, EvalContext(), deleted,
                            edb_facts=lambda p: edb.get(p, set()),
                            stats=stats)
        assert stats.plans_evicted >= len(big_band_keys)
        # no cached plan survives under a band the relation has left
        from repro.datalog.runtime import cardinality_band
        band_now = cardinality_band(len(db.tuples("e")))
        for rule in rules:
            preds = rule._size_preds or ()
            for key in rule._plans:
                if key[1] is None:
                    continue
                for index, pred in enumerate(preds):
                    if pred == "e":
                        assert key[1][index] <= band_now

    def test_maintained_state_matches_scratch_after_eviction(self):
        rules, db, edb, stats = self._chain()
        deleted = {"e": {(i, i + 1) for i in range(10, 100)}}
        for fact in deleted["e"]:
            db.discard("e", fact)
            edb["e"].discard(fact)
        propagate_deletions(stratify(rules), db, EvalContext(), deleted,
                            edb_facts=lambda p: edb.get(p, set()),
                            stats=stats)
        scratch = Database()
        for fact in edb["e"]:
            scratch.add("e", fact)
        evaluate(normalize_rules(rules_of(
            "base: r(X,Y) <- e(X,Y). step: r(X,Z) <- r(X,Y), e(Y,Z).")),
            scratch)
        assert scratch.tuples("r") == db.tuples("r")
        # the next insertion replans cleanly at the new band
        db.add("e", (3, 9))
        edb["e"].add((3, 9))
        propagate_insertions(stratify(rules), db, EvalContext(), {"e": {(3, 9)}},
                             edb_facts=lambda p: edb.get(p, set()))
        scratch2 = Database()
        for fact in edb["e"]:
            scratch2.add("e", fact)
        evaluate(normalize_rules(rules_of(
            "base: r(X,Y) <- e(X,Y). step: r(X,Z) <- r(X,Y), e(Y,Z).")),
            scratch2)
        assert scratch2.tuples("r") == db.tuples("r")
