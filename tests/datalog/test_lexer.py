"""Tokenizer behaviour, especially the gluing rules the dialect needs."""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.lexer import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "EOF"]


class TestBasicTokens:
    def test_identifier(self):
        assert kinds("access") == [("IDENT", "access")]

    def test_variable_uppercase(self):
        assert kinds("Principal") == [("VAR", "Principal")]

    def test_underscore_is_variable(self):
        assert kinds("_") == [("VAR", "_")]

    def test_underscore_prefixed_variable(self):
        assert kinds("_Tmp") == [("VAR", "_Tmp")]

    def test_integer(self):
        assert kinds("42") == [("INT", "42")]

    def test_float(self):
        assert kinds("3.25") == [("FLOAT", "3.25")]

    def test_integer_then_period_is_not_float(self):
        # "p(1)." must end with a '.' punct, not swallow it into a float
        assert kinds("1.")[-1] == ("PUNCT", ".")

    def test_string(self):
        assert kinds('"hello world"') == [("STRING", "hello world")]

    def test_string_escapes(self):
        assert kinds(r'"a\"b\\c\nd"') == [("STRING", 'a"b\\c\nd')]

    def test_hex_bytes(self):
        assert kinds("0xdeadbeef") == [("HEX", "0xdeadbeef")]

    def test_keywords(self):
        assert kinds("me true false agg") == [
            ("KEYWORD", "me"), ("KEYWORD", "true"),
            ("KEYWORD", "false"), ("KEYWORD", "agg"),
        ]

    def test_says_is_plain_identifier(self):
        # 'says' is a predicate in the core dialect, not a keyword
        assert kinds("says")[0][0] == "IDENT"

    def test_apostrophe_in_identifier(self):
        # the paper's curried predicates are written p'
        assert kinds("p'") == [("IDENT", "p'")]


class TestPunctuation:
    @pytest.mark.parametrize("punct", [
        "[|", "|]", "<<", ">>", "<-", "->", ":-", "<=", ">=", "!=",
        "(", ")", "[", "]", "<", ">", "=", "+", "-", "*", "/",
        ",", ";", "!", ".", "@", ":",
    ])
    def test_each_punct(self, punct):
        assert kinds(punct) == [("PUNCT", punct)]

    def test_quote_brackets_beat_plain_brackets(self):
        assert kinds("[|x|]") == [
            ("PUNCT", "[|"), ("IDENT", "x"), ("PUNCT", "|]"),
        ]

    def test_arrow_vs_less_equal(self):
        assert kinds("a<-b") == [("IDENT", "a"), ("PUNCT", "<-"), ("IDENT", "b")]
        assert kinds("a <= b")[1] == ("PUNCT", "<=")

    def test_agg_delimiters(self):
        assert [k for k, _ in kinds("<<N>>")] == ["PUNCT", "VAR", "PUNCT"]


class TestGluing:
    def test_qualified_name_is_glued(self):
        tokens = tokenize("message:id")
        assert tokens[1].glued and tokens[2].glued

    def test_label_colon_not_glued_to_next(self):
        tokens = tokenize("m2: message")
        # 'message' follows whitespace, so it is not glued
        assert not tokens[2].glued

    def test_star_gluing_for_kleene(self):
        tokens = tokenize("T* N * 2")
        assert tokens[1].glued          # star glued to T
        assert not tokens[3].glued      # star after N has a space

    def test_partition_bracket_glued(self):
        tokens = tokenize("export[me] export [me]")
        assert tokens[1].glued
        assert not tokens[5].glued


class TestCommentsAndErrors:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("IDENT", "a"), ("IDENT", "b")]

    def test_percent_comment(self):
        assert kinds("a % comment\nb") == [("IDENT", "a"), ("IDENT", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("IDENT", "a"), ("IDENT", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("a /* never closed")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"no close')

    def test_newline_in_string(self):
        with pytest.raises(ParseError):
            tokenize('"a\nb"')

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a # b")

    def test_line_numbers(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2 and tokens[1].column == 3
