"""DNF normalization of body formulas."""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.logic import And, Not, Or, conj, disj, push_negations, to_dnf
from repro.datalog.terms import Atom, BuiltinCall, Comparison, Literal, Variable


def lit(name):
    return Literal(Atom(name, (Variable("X"),)))


class TestConstructors:
    def test_conj_flattens(self):
        formula = conj([conj([lit("a"), lit("b")]), lit("c")])
        assert isinstance(formula, And)
        assert len(formula.parts) == 3

    def test_singleton_conj_collapses(self):
        assert conj([lit("a")]) == lit("a")

    def test_disj_flattens(self):
        formula = disj([disj([lit("a"), lit("b")]), lit("c")])
        assert isinstance(formula, Or)
        assert len(formula.parts) == 3


class TestNegation:
    def test_double_negation(self):
        assert push_negations(Not(Not(lit("a")))) == lit("a")

    def test_de_morgan_and(self):
        formula = push_negations(Not(And((lit("a"), lit("b")))))
        assert isinstance(formula, Or)
        assert all(part.negated for part in formula.parts)

    def test_de_morgan_or(self):
        formula = push_negations(Not(Or((lit("a"), lit("b")))))
        assert isinstance(formula, And)

    def test_comparison_flip(self):
        comparison = Comparison("<", Variable("X"), Variable("Y"))
        flipped = push_negations(Not(comparison))
        assert flipped.op == ">="

    def test_equality_flip(self):
        comparison = Comparison("=", Variable("X"), Variable("Y"))
        assert push_negations(Not(comparison)).op == "!="

    def test_negating_builtin_rejected(self):
        call = BuiltinCall("rsasign", (Variable("R"),))
        with pytest.raises(ParseError):
            push_negations(Not(call))


class TestDNF:
    def test_atom_is_single_alternative(self):
        assert to_dnf(lit("a")) == ((lit("a"),),)

    def test_or_gives_alternatives(self):
        assert len(to_dnf(Or((lit("a"), lit("b"))))) == 2

    def test_and_over_or_distributes(self):
        formula = And((lit("a"), Or((lit("b"), lit("c")))))
        alternatives = to_dnf(formula)
        assert len(alternatives) == 2
        assert all(alt[0] == lit("a") for alt in alternatives)

    def test_cross_product(self):
        formula = And((Or((lit("a"), lit("b"))), Or((lit("c"), lit("d")))))
        assert len(to_dnf(formula)) == 4

    def test_negation_inside(self):
        formula = And((lit("a"), Not(And((lit("b"), lit("c"))))))
        alternatives = to_dnf(formula)
        assert len(alternatives) == 2
        for alt in alternatives:
            assert alt[1].negated
