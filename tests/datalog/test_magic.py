"""Magic-sets rewrite: equivalence with bottom-up, goal-directedness."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.database import Database
from repro.datalog.engine import EvalStats, evaluate
from repro.datalog.errors import SafetyError
from repro.datalog.magic import choose_strategy, magic_transform, query_magic
from repro.datalog.parser import parse_atom, parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- e(X,Y), r(Y,Z)."
SAME_GEN = """
sg(X,X) <- person(X).
sg(X,Y) <- par(X,XP), sg(XP,YP), par(Y,YP).
"""


def rules_of(source):
    return [s for s in parse_statements(source) if isinstance(s, Rule)]


def db_with(facts):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    return database


def bottom_up(source, facts, pred):
    database = db_with(facts)
    evaluate(rules_of(source), database, EvalContext())
    return database.tuples(pred)


class TestEquivalence:
    def test_bound_free_query(self):
        facts = {"e": [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]}
        answers = query_magic(rules_of(TC), db_with(facts),
                              parse_atom('r("a",X)'))
        truth = {t for t in bottom_up(TC, facts, "r") if t[0] == "a"}
        assert answers == truth

    def test_fully_bound_query(self):
        facts = {"e": [("a", "b"), ("b", "c")]}
        hit = query_magic(rules_of(TC), db_with(facts), parse_atom('r("a","c")'))
        miss = query_magic(rules_of(TC), db_with(facts), parse_atom('r("c","a")'))
        assert hit == {("a", "c")} and miss == set()

    def test_free_bound_query(self):
        facts = {"e": [("a", "b"), ("b", "c")]}
        answers = query_magic(rules_of(TC), db_with(facts),
                              parse_atom('r(X,"c")'))
        truth = {t for t in bottom_up(TC, facts, "r") if t[1] == "c"}
        assert answers == truth

    def test_same_generation(self):
        facts = {
            "person": [("ann",), ("bob",), ("cal",), ("dee",)],
            "par": [("bob", "ann"), ("cal", "ann"), ("dee", "bob")],
        }
        answers = query_magic(rules_of(SAME_GEN), db_with(facts),
                              parse_atom('sg("bob",X)'))
        truth = {t for t in bottom_up(SAME_GEN, facts, "sg") if t[0] == "bob"}
        assert answers == truth

    def test_no_pollution_of_source_db(self):
        facts = {"e": [("a", "b")]}
        database = db_with(facts)
        query_magic(rules_of(TC), database, parse_atom('r("a",X)'))
        assert set(database.relations) == {"e"}


class TestGoalDirectedness:
    def test_irrelevant_component_not_explored(self):
        # a big component unrelated to the query should cost nothing
        edges = [("a", "b")] + [(f"x{i}", f"x{i+1}") for i in range(40)]
        program = magic_transform(rules_of(TC), parse_atom('r("a",X)'))
        overlay = db_with({"e": edges})
        overlay.add(program.seed_pred, program.seed_fact)
        stats = EvalStats()
        evaluate(program.rules, overlay, EvalContext(), stats=stats)
        full_stats = EvalStats()
        evaluate(rules_of(TC), db_with({"e": edges}), EvalContext(),
                 stats=full_stats)
        assert stats.new_facts < full_stats.new_facts / 4


class TestRestrictionsAndStrategy:
    def test_negation_rejected(self):
        with pytest.raises(SafetyError):
            magic_transform(rules_of("p(X) <- v(X), !w(X)."),
                            parse_atom('p("a")'))

    def test_aggregate_rejected(self):
        with pytest.raises(SafetyError):
            magic_transform(rules_of("c(N) <- agg<<N = count(X)>> v(X)."),
                            parse_atom("c(N)"))

    def test_query_without_rules_rejected(self):
        with pytest.raises(SafetyError):
            magic_transform(rules_of(TC), parse_atom('e("a",X)'))

    def test_choose_strategy(self):
        rules = rules_of(TC)
        database = db_with({"e": [("a", "b")]})
        assert choose_strategy(rules, parse_atom('r("a",X)'), database) == "magic"
        assert choose_strategy(rules, parse_atom("r(X,Y)"), database) == "bottomup"
        neg_rules = rules_of("p(X) <- v(X), !w(X).")
        assert choose_strategy(neg_rules, parse_atom('p("a")'), database) == "bottomup"


@given(st.integers(0, 2 ** 30))
@settings(max_examples=20, deadline=None)
def test_property_magic_matches_bottomup(seed):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(rng.randint(2, 7))]
    edges = {(rng.choice(nodes), rng.choice(nodes))
             for _ in range(rng.randint(1, 14))}
    facts = {"e": sorted(edges)}
    source = rng.choice(nodes)
    answers = query_magic(rules_of(TC), db_with(facts),
                          parse_atom(f'r("{source}",X)'))
    truth = {t for t in bottom_up(TC, facts, "r") if t[0] == source}
    assert answers == truth


class TestProgramCache:
    """The rewrite cache: one program per (rules, pred, binding pattern)."""

    def test_same_pattern_different_bindings_share_one_program(self):
        facts = {"e": [("a", "b"), ("b", "c"), ("c", "d")]}
        db = db_with(facts)
        rules = rules_of(TC)
        truth = bottom_up(TC, facts, "r")
        stats = EvalStats()
        context = EvalContext(stats=stats)
        for source in ("a", "b", "c", "zz"):
            answers = query_magic(rules, db, parse_atom(f'r("{source}",X)'),
                                  context)
            assert answers == {t for t in truth if t[0] == source}
        # one rewrite built, three served from the cache — the bound
        # *values* differ per query but the binding pattern does not
        assert stats.magic_programs_built == 1
        assert stats.magic_cache_hits == 3

    def test_distinct_patterns_get_distinct_programs(self):
        facts = {"e": [("a", "b"), ("b", "c")]}
        db = db_with(facts)
        rules = rules_of(TC)
        stats = EvalStats()
        context = EvalContext(stats=stats)
        bf = query_magic(rules, db, parse_atom('r("a",X)'), context)
        fb = query_magic(rules, db, parse_atom('r(X,"c")'), context)
        bb = query_magic(rules, db, parse_atom('r("a","c")'), context)
        assert stats.magic_programs_built == 3
        assert stats.magic_cache_hits == 0
        truth = bottom_up(TC, facts, "r")
        assert bf == {t for t in truth if t[0] == "a"}
        assert fb == {t for t in truth if t[1] == "c"}
        assert bb == {("a", "c")}

    def test_fresh_rule_objects_do_not_poison_the_cache(self):
        # identity-keyed: re-parsing the program is a different key, so
        # answers stay correct (a miss, never a wrong hit)
        facts = {"e": [("a", "b"), ("b", "c")]}
        db = db_with(facts)
        first = query_magic(rules_of(TC), db, parse_atom('r("a",X)'))
        second = query_magic(rules_of(TC), db, parse_atom('r("a",X)'))
        assert first == second == {("a", "b"), ("a", "c")}

    def test_cache_is_fifo_bounded(self):
        from repro.datalog import magic as magic_module

        facts = {"e": [("a", "b")]}
        db = db_with(facts)
        keep = []
        before = len(magic_module._PROGRAM_CACHE)
        for _ in range(magic_module.MAX_CACHED_PROGRAMS + 8):
            rules = rules_of(TC)   # fresh identities: a fresh cache key
            keep.append(rules)
            query_magic(rules, db, parse_atom('r("a",X)'))
        assert len(magic_module._PROGRAM_CACHE) \
            <= magic_module.MAX_CACHED_PROGRAMS
        assert len(magic_module._PROGRAM_CACHE) >= before
