"""Magic-sets over richer rule bodies: builtins, comparisons, multi-join."""

from repro.datalog.builtins import standard_registry
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.magic import magic_transform, query_magic
from repro.datalog.parser import parse_atom, parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule
from repro.meta.quote import compile_rule


def compiled_rules(source):
    registry = standard_registry()
    return [compile_rule(s, None, registry)
            for s in parse_statements(source) if isinstance(s, Rule)]


def db_with(facts):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    return database


def bottom_up(rules, facts, pred):
    database = db_with(facts)
    evaluate(rules, database,
             EvalContext(builtins=standard_registry()))
    return database.tuples(pred)


class TestComparisonsInBodies:
    RULES = """
    within(X,Y,D) <- hop(X,Y,D).
    within(X,Z,D) <- hop(X,Y,D1), within(Y,Z,D2), D = D1 + D2, D <= 10.
    """

    FACTS = {"hop": [("a", "b", 3), ("b", "c", 4), ("c", "d", 5),
                     ("a", "d", 2)]}

    def test_bounded_path_query(self):
        rules = compiled_rules(self.RULES)
        truth = {t for t in bottom_up(rules, self.FACTS, "within")
                 if t[0] == "a"}
        answers = query_magic(rules, db_with(self.FACTS),
                              parse_atom('within("a",Y,D)'),
                              context=EvalContext(builtins=standard_registry()))
        assert answers == truth
        # the distance cutoff really prunes: a→b→c→d exceeds 10
        assert not any(t[1] == "d" and t[2] > 10 for t in answers)


class TestBuiltinsInBodies:
    RULES = """
    label(X,L) <- node(X), concat("node-", X, L).
    reach(X,Y) <- edge(X,Y).
    reach(X,Z) <- edge(X,Y), reach(Y,Z).
    tagged(X,L) <- reach("a",X), label(X,L).
    """

    FACTS = {"node": [("a",), ("b",), ("c",)],
             "edge": [("a", "b"), ("b", "c")]}

    def test_builtin_stage_passes_through(self):
        rules = compiled_rules(self.RULES)
        context = EvalContext(builtins=standard_registry())
        truth = bottom_up(rules, self.FACTS, "tagged")
        answers = query_magic(rules, db_with(self.FACTS),
                              parse_atom("tagged(X,L)"), context=context)
        assert answers == truth == {("b", "node-b"), ("c", "node-c")}


class TestMultiIDBJoins:
    RULES = """
    anc(X,Y) <- par(X,Y).
    anc(X,Z) <- par(X,Y), anc(Y,Z).
    cousin_depth(X,Y) <- anc(A,X), anc(A,Y).
    """

    FACTS = {"par": [("r", "a"), ("r", "b"), ("a", "c"), ("b", "d")]}

    def test_two_idb_literals_one_rule(self):
        rules = compiled_rules(self.RULES)
        truth = {t for t in bottom_up(rules, self.FACTS, "cousin_depth")
                 if t[0] == "c"}
        answers = query_magic(rules, db_with(self.FACTS),
                              parse_atom('cousin_depth("c",Y)'))
        assert answers == truth

    def test_transform_structure(self):
        rules = compiled_rules(self.RULES)
        program = magic_transform(rules, parse_atom('cousin_depth("c",Y)'))
        names = {r.heads[0].pred for r in program.rules}
        # both anc adornments appear: bound-free from the first literal's
        # free A... (ff) and the second with A bound (bf)
        assert any(name.startswith("magic$anc$") for name in names)
        assert program.answer_pred == "cousin_depth$bf"
