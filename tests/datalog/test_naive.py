"""Naive evaluation agrees with semi-naive — concretely and by property."""

import random

from hypothesis import given, settings, strategies as st

from repro.datalog.database import Database
from repro.datalog.engine import EvalStats, evaluate
from repro.datalog.naive import evaluate_naive
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule


def rules_of(source):
    return [s for s in parse_statements(source) if isinstance(s, Rule)]


TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."


def load(facts):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    return database


def models_equal(source, facts):
    semi = load(facts)
    naive = load(facts)
    evaluate(rules_of(source), semi, EvalContext())
    evaluate_naive(rules_of(source), naive, EvalContext())
    semi_model = {n: set(r.tuples) for n, r in semi.relations.items()}
    naive_model = {n: set(r.tuples) for n, r in naive.relations.items()}
    return semi_model == naive_model


class TestAgreement:
    def test_transitive_closure(self):
        assert models_equal(TC, {"e": [("a", "b"), ("b", "c"), ("c", "a")]})

    def test_negation(self):
        assert models_equal(
            TC + " un(X,Y) <- n(X), n(Y), !r(X,Y).",
            {"e": [("a", "b")], "n": [("a",), ("b",), ("c",)]})

    def test_aggregation(self):
        assert models_equal(
            "deg(X,N) <- agg<<N = count(Y)>> e(X,Y). "
            "hub(X) <- deg(X,N), N >= 2.",
            {"e": [("a", 1), ("a", 2), ("b", 1)]})

    def test_mutual_recursion(self):
        assert models_equal(
            "p(X) <- s(X). p(X) <- q(X). q(Y) <- p(X), e(X,Y).",
            {"s": [("a",)], "e": [("a", "b"), ("b", "c")]})


class TestEfficiency:
    def test_seminaive_fires_fewer_derivations_on_chains(self):
        chain = {"e": [(i, i + 1) for i in range(30)]}
        semi_stats, naive_stats = EvalStats(), EvalStats()
        semi = load(chain)
        naive = load(chain)
        evaluate(rules_of(TC), semi, EvalContext(), stats=semi_stats)
        evaluate_naive(rules_of(TC), naive, EvalContext(), stats=naive_stats)
        assert semi.tuples("r") == naive.tuples("r")
        # the whole point of semi-naive: no re-derivation of old facts
        assert semi_stats.derivations < naive_stats.derivations


@given(st.integers(0, 2 ** 30))
@settings(max_examples=30, deadline=None)
def test_property_random_graphs_agree(seed):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(rng.randint(2, 8))]
    edges = {(rng.choice(nodes), rng.choice(nodes))
             for _ in range(rng.randint(1, 15))}
    facts = {"e": sorted(edges), "n": [(n,) for n in nodes]}
    program = TC + " un(X,Y) <- n(X), n(Y), !r(X,Y)."
    assert models_equal(program, facts)


@given(st.integers(0, 2 ** 30))
@settings(max_examples=20, deadline=None)
def test_property_tc_matches_networkx(seed):
    import networkx as nx

    rng = random.Random(seed)
    nodes = list(range(rng.randint(2, 9)))
    edges = {(rng.choice(nodes), rng.choice(nodes))
             for _ in range(rng.randint(1, 18))}
    database = load({"e": sorted(edges)})
    evaluate(rules_of(TC), database, EvalContext())

    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    # nx.transitive_closure uses paths of length >= 1 — exactly datalog TC
    # semantics, including (x,x) for nodes on cycles.
    closure = nx.transitive_closure(graph)
    assert database.tuples("r") == set(closure.edges())
