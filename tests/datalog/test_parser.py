"""Parser coverage: every construct the paper's listings use."""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.parser import (
    parse_atom,
    parse_rule,
    parse_statements,
    parse_term,
)
from repro.datalog.terms import (
    ME,
    Aggregate,
    Atom,
    AtomPattern,
    BuiltinCall,
    Comparison,
    Constant,
    Constraint,
    EqPattern,
    Expr,
    Literal,
    PartitionTerm,
    Quote,
    Rule,
    Star,
    StarLits,
    Variable,
)


class TestFactsAndRules:
    def test_fact(self):
        rule = parse_rule('good("carol").')
        assert rule.is_fact()
        assert rule.head == Atom("good", (Constant("carol"),))

    def test_simple_rule(self):
        rule = parse_rule("access(P,O) <- good(P), object(O).")
        assert rule.head.pred == "access"
        assert [item.atom.pred for item in rule.body] == ["good", "object"]

    def test_lowercase_ident_is_string_constant(self):
        rule = parse_rule("access(P,O,read) <- good(P), object(O).")
        assert rule.head.args[2] == Constant("read")

    def test_multi_head_fact(self):
        statements = parse_statements('mode("read"), mode("write").')
        assert len(statements) == 1
        assert len(statements[0].heads) == 2

    def test_label(self):
        rule = parse_rule("b1: access(P) <- good(P).")
        assert rule.label == "b1"

    def test_qualified_predicate_name(self):
        rule = parse_rule("message:id(M,N) <- message(M), int(N).")
        assert rule.head.pred == "message:id"

    def test_label_before_qualified_name(self):
        statements = parse_statements("m2: message:id(M,N) <- message(M).")
        assert statements[0].label == "m2"
        assert statements[0].head.pred == "message:id"

    def test_negation(self):
        rule = parse_rule("p(X) <- q(X), !r(X).")
        assert rule.body[1].negated

    def test_anonymous_variables_are_fresh(self):
        rule = parse_rule("p(X) <- q(X,_,_).")
        anon = [a for a in rule.body[0].atom.args[1:]]
        assert anon[0] != anon[1]

    def test_me_keyword(self):
        rule = parse_rule("says(me,U,R) <- q(U,R).")
        assert rule.head.args[0] == Constant(ME)

    def test_comparisons(self):
        rule = parse_rule("p(N) <- q(N), N >= 3, N != 7.")
        comparisons = [item for item in rule.body if isinstance(item, Comparison)]
        assert [c.op for c in comparisons] == [">=", "!="]

    def test_arithmetic_expression(self):
        rule = parse_rule("p(N) <- q(M), N = M - 1.")
        comparison = rule.body[1]
        assert isinstance(comparison.right, Expr)
        assert comparison.right.op == "-"

    def test_precedence(self):
        term = parse_term("1 + 2 * 3")
        assert term.op == "+"
        assert term.right.op == "*"

    def test_unary_minus_folds(self):
        assert parse_term("-5") == Constant(-5)

    def test_partitioned_atom(self):
        rule = parse_rule("export[U2](U,R,S) <- says(U,U2,R), sig(R,S).")
        assert rule.head.keys == (Variable("U2"),)
        assert rule.head.arity == 4

    def test_partition_term_as_argument(self):
        rule = parse_rule("predNode(export[P],N) <- loc(P,N).")
        assert isinstance(rule.head.args[0], PartitionTerm)

    def test_statement_without_terminator_fails(self):
        with pytest.raises(ParseError):
            parse_statements("p(X) <- q(X)")

    def test_negated_head_fails(self):
        with pytest.raises(ParseError):
            parse_statements("!p(X) <- q(X).")


class TestDisjunctionDNF:
    def test_disjunctive_body_splits(self):
        statements = parse_statements("p(X) <- q(X); r(X).")
        assert len(statements) == 2
        assert {s.body[0].atom.pred for s in statements} == {"q", "r"}

    def test_nested_negation_demorgan(self):
        statements = parse_statements("p(X) <- s(X), !(q(X), r(X)).")
        assert len(statements) == 2
        negated = {s.body[1].atom.pred for s in statements}
        assert negated == {"q", "r"}
        assert all(s.body[1].negated for s in statements)

    def test_negated_comparison_flips(self):
        rule = parse_rule("p(X) <- q(X), !(X < 3).")
        assert rule.body[1].op == ">="

    def test_conjunction_of_disjunctions(self):
        statements = parse_statements("p(X) <- (a(X); b(X)), (c(X); d(X)).")
        assert len(statements) == 4


class TestConstraints:
    def test_type_declaration(self):
        constraint = parse_statements(
            "access(P,O,M) -> principal(P), object(O), mode(M).")[0]
        assert isinstance(constraint, Constraint)
        assert len(constraint.lhs) == 1 and len(constraint.rhs) == 1

    def test_bare_declaration(self):
        constraint = parse_statements("rule(R) -> .")[0]
        assert constraint.is_declaration()

    def test_negated_rhs(self):
        constraint = parse_statements(
            "inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).")[0]
        item = constraint.rhs[0][0]
        assert item.negated

    def test_disjunctive_rhs(self):
        constraint = parse_statements("p(X) -> q(X) ; r(X).")[0]
        assert len(constraint.rhs) == 2

    def test_labelled_constraint(self):
        constraint = parse_statements("exp3: says(U) -> export(U).")[0]
        assert constraint.label == "exp3"


class TestAggregates:
    def test_count(self):
        rule = parse_rule(
            'c(C,N) <- agg<<N = count(U)>> pringroup(U,"g"), says(U,C).')
        assert isinstance(rule.agg, Aggregate)
        assert rule.agg.func == "count"
        assert rule.agg.result == Variable("N")

    def test_total(self):
        rule = parse_rule("t(C,W) <- agg<<W = total(Wt)>> w(C,Wt).")
        assert rule.agg.func == "total"

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("t(C,W) <- agg<<W = median(Wt)>> w(C,Wt).")


class TestQuotes:
    def test_fact_pattern(self):
        rule = parse_rule("p(U) <- says(U,me,[| creditOK(C). |]).")
        quote = rule.body[0].atom.args[2]
        assert isinstance(quote, Quote)
        assert not quote.pattern.has_arrow
        head = quote.pattern.heads[0]
        assert head.functor == "creditOK"
        assert head.args == (Variable("C"),)

    def test_fact_pattern_without_period(self):
        # the paper writes [|access(P,O,read)|] without a final period
        rule = parse_rule("p(U) <- says(U,me,[|access(P,O,read)|]).")
        quote = rule.body[0].atom.args[2]
        assert quote.pattern.heads[0].functor == "access"

    def test_rule_pattern_with_stars(self):
        rule = parse_rule("owner(U,R) <- x(U), R = [| A <- P(T2*), A*. |].")
        eq = rule.body[1]
        assert isinstance(eq.right, Quote)
        pattern = eq.right.pattern
        assert pattern.has_arrow
        head = pattern.heads[0]
        assert head.is_bare_metavar()
        body_atom = pattern.body[0]
        assert isinstance(body_atom.functor, Variable)
        assert isinstance(body_atom.args[0], Star)
        assert isinstance(pattern.body[1], StarLits)

    def test_nested_quote(self):
        rule = parse_rule(
            "del1: active([| active(R) <- says(U2,me,R), "
            "R = [| P(T*) <- A*. |]. |]) <- delegates(me,U2,P).")
        outer = rule.head.args[0]
        assert isinstance(outer, Quote)
        inner = outer.pattern.body[1]
        assert isinstance(inner, EqPattern)
        assert isinstance(inner.quote.pattern.heads[0].functor, Variable)

    def test_template_with_arithmetic(self):
        rule = parse_rule(
            "dd3: says(me,U,[| d(me,U,P,N-1). |]) <- d2(me,U,P,N), N > 0.")
        template = rule.head.args[2]
        arg = template.pattern.heads[0].args[3]
        assert isinstance(arg, Expr)

    def test_negated_pattern_atom(self):
        rule = parse_rule("p(R) <- R = [| H(X) <- !q(X). |].")
        pattern = rule.body[0].right.pattern
        assert pattern.body[0].negated


class TestEntryPoints:
    def test_parse_atom(self):
        atom = parse_atom("access(P,O,read)")
        assert atom.pred == "access" and atom.arity == 3

    def test_parse_atom_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_atom("access(P) extra")

    def test_parse_rule_rejects_constraint(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) -> q(X).")

    def test_parse_term_quote(self):
        term = parse_term("[| p(X). |]")
        assert isinstance(term, Quote)
