"""Source spans threaded from the lexer through the parser.

Spans are metadata: they never participate in equality, hashing, or
interning (``compare=False``), so two occurrences of the same literal at
different positions stay equal while each remembers where it came from.
"""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.parser import parse_statements
from repro.datalog.terms import Comparison, Literal, Rule, Span


def test_rule_and_literal_spans():
    source = "p(X) <- q(X), !r(X), X > 1.\n  s(Y) <- t(Y)."
    first, second = parse_statements(source)
    assert first.span == Span(1, 1)
    q, r, cmp = first.body
    assert isinstance(q, Literal) and q.span == Span(1, 9)
    assert isinstance(r, Literal) and r.span == Span(1, 16)
    assert isinstance(cmp, Comparison) and cmp.span == Span(1, 22)
    # second rule starts on line 2, after indentation
    assert second.span == Span(2, 3)
    assert second.body[0].span == Span(2, 11)


def test_head_atom_span():
    [rule] = parse_statements("p(X,Y) <- q(X,Y).")
    assert rule.heads[0].span == Span(1, 1)


def test_constraint_span():
    [constraint] = parse_statements("access(P) -> principal(P).")
    assert constraint.span == Span(1, 1)


def test_spans_do_not_affect_equality():
    [a] = parse_statements("p(X) <- q(X).")
    [b] = parse_statements("\n   p(X) <- q(X).")
    assert a == b and a.span != b.span
    assert hash(a.body[0]) == hash(b.body[0])


def test_parse_error_carries_position_and_excerpt():
    with pytest.raises(ParseError) as exc:
        parse_statements("p(X) <- q(X)\nbroken")
    error = exc.value
    assert error.line >= 1 and error.column >= 1
    rendered = str(error)
    assert "line" in rendered
    # the offending source line and a caret are shown
    assert "^" in rendered


def test_parse_error_base_message_is_caret_free():
    with pytest.raises(ParseError) as exc:
        parse_statements("p(X <- q(X).")
    assert "^" not in exc.value.base_message
    assert "\n" not in exc.value.base_message
