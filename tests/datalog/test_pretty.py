"""Pretty-printer round-trips and canonicalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.parser import parse_rule, parse_statements
from repro.datalog.pretty import (
    canonical_constraint,
    canonical_rule,
    format_statement,
    format_value,
)
from repro.datalog.terms import RuleRef

ROUND_TRIP_SOURCES = [
    'good("carol").',
    'access(P,O,"read") <- good(P), object(O).',
    "p(X) <- q(X), !r(X).",
    "p(N) <- q(M), N = M - 1, N >= 0.",
    "export[U2](U,R,S) <- says(U,U2,R).",
    "predNode(export[P],N) <- loc(P,N).",
    'c(C,N) <- agg<<N = count(U)>> pringroup(U,"g"), s(U,C).',
    'p(U) <- says(U,me,[| creditOK(C). |]).',
    "owner(U,R) <- x(U), R = [| A <- P(T2*), A*. |].",
    "active([| active(R) <- says(U2,me,R), R = [| P(T*) <- A*. |]. |]) <- delegates(me,U2,P).",
    'says(me,U,[| d(me,U,P,(N - 1)). |]) <- d2(me,U,P,N), N > 0.',
    "t(F) <- data(F,D), strlen(D,N), N > 3.",
    'p(X) <- q(X), X != "z".',
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_parse_format_parse(self, source):
        first = parse_statements(source)
        printed = [format_statement(s) for s in first]
        second = parse_statements(" ".join(printed))
        reprinted = [format_statement(s) for s in second]
        assert printed == reprinted

    def test_constraint_round_trip(self):
        source = "access(P,O,M) -> principal(P), object(O), mode(M)."
        statement = parse_statements(source)[0]
        printed = format_statement(statement)
        again = parse_statements(printed)[0]
        assert format_statement(again) == printed


class TestFormatValue:
    def test_bool_before_int(self):
        assert format_value(True) == "true"
        assert format_value(1) == "1"

    def test_string_escaping(self):
        assert format_value('a"b') == '"a\\"b"'

    def test_bytes(self):
        assert format_value(b"\xde\xad") == "0xdead"

    def test_rule_ref(self):
        assert format_value(RuleRef(7)) == "$r7"

    def test_tuple_as_list(self):
        assert format_value(("a", 1)) == '{"a",1}'

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            format_value(object())


class TestCanonical:
    def test_alpha_renaming_equates_variants(self):
        left = parse_rule("p(X,Y) <- q(X,Y), r(Y).")
        right = parse_rule("p(A,B) <- q(A,B), r(B).")
        assert canonical_rule(left) == canonical_rule(right)

    def test_different_structure_differs(self):
        left = parse_rule("p(X,Y) <- q(X,Y).")
        right = parse_rule("p(X,Y) <- q(Y,X).")
        assert canonical_rule(left) != canonical_rule(right)

    def test_constants_preserved(self):
        rule = parse_rule('p(X) <- q(X,"k").')
        assert '"k"' in canonical_rule(rule)

    def test_anonymous_variable_naming_is_stable(self):
        left = parse_rule("p(X) <- q(X,_).")
        right = parse_rule("p(X) <- q(X,_).")
        assert canonical_rule(left) == canonical_rule(right)

    def test_canonical_output_reparses(self):
        rule = parse_rule(
            "active([| active(R) <- says(U2,me,R), R = [| P(T*) <- A*. |]. |])"
            " <- delegates(me,U2,P).")
        text = canonical_rule(rule)
        assert canonical_rule(parse_rule(text)) == text

    def test_quote_canonicalization(self):
        left = parse_rule("p(U) <- says(U,me,[| ok(C). |]).")
        right = parse_rule("p(V) <- says(V,me,[| ok(D). |]).")
        assert canonical_rule(left) == canonical_rule(right)

    def test_constraint_canonical_dedup_key(self):
        from repro.meta.quote import compile_constraint
        from repro.datalog.parser import parse_statements as ps
        source = "says(U,me,[| A <- P(T2*), A*. |]) -> mayRead(U,P)."
        one = compile_constraint(ps(source)[0], "alice", None)
        two = compile_constraint(ps(source)[0], "alice", None)
        # fresh quote-compilation variables differ, canonical form agrees
        assert canonical_constraint(one) == canonical_constraint(two)


@st.composite
def simple_rules(draw):
    """Random small rules over a fixed vocabulary."""
    preds = st.sampled_from(["p", "q", "r", "s"])
    variables = st.sampled_from(["X", "Y", "Z"])
    constants = st.sampled_from(['"a"', '"b"', "1", "2"])
    def atom():
        name = draw(preds)
        args = draw(st.lists(st.one_of(variables, constants),
                             min_size=1, max_size=3))
        return f"{name}({','.join(args)})"
    head = atom()
    body = [atom() for _ in range(draw(st.integers(1, 3)))]
    # keep it safe: reuse head vars in the first body atom
    return f"{head} <- {', '.join(body + [head])}."


@given(simple_rules())
@settings(max_examples=60, deadline=None)
def test_property_round_trip(source):
    statements = parse_statements(source)
    printed = [format_statement(s) for s in statements]
    second = parse_statements(" ".join(printed))
    assert [format_statement(s) for s in second] == printed


@given(simple_rules())
@settings(max_examples=60, deadline=None)
def test_property_canonical_idempotent(source):
    rule = parse_statements(source)[0]
    text = canonical_rule(rule)
    assert canonical_rule(parse_rule(text)) == text
