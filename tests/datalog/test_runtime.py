"""The join core: plans, term evaluation, matching, safety analysis."""

import pytest

from repro.datalog.builtins import standard_registry
from repro.datalog.database import Database, Relation
from repro.datalog.errors import BuiltinError, SafetyError
from repro.datalog.parser import parse_statements, parse_term
from repro.datalog.runtime import (
    EvalContext,
    Unbound,
    bindable_vars,
    build_plan,
    check_rule_safety,
    eval_term,
    match_literal,
    solve,
)
from repro.datalog.terms import (
    Atom,
    BuiltinCall,
    Comparison,
    Constant,
    Literal,
    PredPartition,
    Rule,
    Variable,
)


def body_of(source):
    (rule,) = [s for s in parse_statements(source) if isinstance(s, Rule)]
    return rule.body


def compiled_body(source):
    """Body with builtin functors resolved (what the engine actually sees)."""
    from repro.meta.quote import compile_rule

    (rule,) = [s for s in parse_statements(source) if isinstance(s, Rule)]
    return compile_rule(rule, None, standard_registry()).body


class TestEvalTerm:
    def setup_method(self):
        self.context = EvalContext()

    def test_constant(self):
        assert eval_term(Constant(5), {}, self.context) == 5

    def test_variable_bound(self):
        assert eval_term(Variable("X"), {"X": "v"}, self.context) == "v"

    def test_variable_unbound_raises(self):
        with pytest.raises(Unbound):
            eval_term(Variable("X"), {}, self.context)

    def test_nested_expression(self):
        term = parse_term("(X + 1) * 2")
        assert eval_term(term, {"X": 3}, self.context) == 8

    def test_partition_term(self):
        term = parse_term("export[P]")
        value = eval_term(term, {"P": "bob"}, self.context)
        assert value == PredPartition("export", ("bob",))

    def test_quote_without_registry_raises(self):
        term = parse_term("[| p(X). |]")
        with pytest.raises(BuiltinError):
            eval_term(term, {"X": 1}, self.context)


class TestMatchLiteral:
    def test_bound_positions_use_index(self):
        relation = Relation("p", [("a", 1), ("a", 2), ("b", 3)])
        atom = Atom("p", (Constant("a"), Variable("X")))
        results = list(match_literal(atom, relation, {}, EvalContext()))
        assert {r["X"] for r in results} == {1, 2}

    def test_repeated_free_variable(self):
        relation = Relation("p", [("a", "a"), ("a", "b")])
        atom = Atom("p", (Variable("X"), Variable("X")))
        results = list(match_literal(atom, relation, {}, EvalContext()))
        assert [r["X"] for r in results] == ["a"]

    def test_arity_mismatch_is_no_match(self):
        relation = Relation("p", [("a",)])
        atom = Atom("p", (Variable("X"), Variable("Y")))
        assert list(match_literal(atom, relation, {}, EvalContext())) == []

    def test_existing_binding_filters(self):
        relation = Relation("p", [("a", 1), ("b", 2)])
        atom = Atom("p", (Variable("X"), Variable("Y")))
        results = list(match_literal(atom, relation, {"X": "b"}, EvalContext()))
        assert [r["Y"] for r in results] == [2]


class TestBuildPlan:
    def test_filters_scheduled_after_binding(self):
        body = body_of("h(X) <- big(X), X > 3, small(X).")
        plan = build_plan(body, builtins=standard_registry())
        kinds = [type(item).__name__ for _, item in plan.steps]
        # the comparison runs immediately after the first literal binds X
        assert kinds == ["Literal", "Comparison", "Literal"]

    def test_negation_deferred_until_shared_vars_bound(self):
        body = body_of("h(X) <- v(X), !w(X,Y), u(Y).")
        plan = build_plan(body, builtins=standard_registry())
        order = [item for _, item in plan.steps]
        negated_index = next(i for i, item in enumerate(order)
                             if isinstance(item, Literal) and item.negated)
        u_index = next(i for i, item in enumerate(order)
                       if isinstance(item, Literal) and item.atom.pred == "u")
        assert u_index < negated_index

    def test_delta_position_comes_first(self):
        body = body_of("h(X,Z) <- a(X,Y), b(Y,Z).")
        plan = build_plan(body, first=1, builtins=standard_registry())
        assert plan.steps[0][0] == 1

    def test_builtin_waits_for_inputs(self):
        body = compiled_body("h(X,N) <- strlen(X,N), v(X).")
        plan = build_plan(body, builtins=standard_registry())
        order = [item for _, item in plan.steps]
        assert isinstance(order[0], Literal)       # v(X) first binds X
        assert isinstance(order[1], BuiltinCall)

    def test_unknown_builtin_rejected(self):
        body = (BuiltinCall("nosuch", (Variable("X"),)),)
        with pytest.raises(SafetyError):
            build_plan(body, builtins=standard_registry())

    def test_unschedulable_raises(self):
        body = (Comparison(">", Variable("X"), Constant(1)),)
        with pytest.raises(SafetyError):
            build_plan(body, builtins=standard_registry())


class TestCostBasedPlan:
    def plan_order(self, body, sizes):
        plan = build_plan(body, builtins=standard_registry(), sizes=sizes)
        return [item.atom.pred for _, item in plan.steps
                if isinstance(item, Literal)], plan

    def test_small_relation_scheduled_first_when_much_cheaper(self):
        body = body_of("h(X) <- big(X), small(X).")
        order, plan = self.plan_order(body, {"big": 1000, "small": 5})
        assert order == ["small", "big"]
        assert plan.reordered

    def test_near_tie_keeps_source_order(self):
        body = body_of("h(X) <- big(X), small(X).")
        order, plan = self.plan_order(body, {"big": 12, "small": 5})
        assert order == ["big", "small"]
        assert not plan.reordered

    def test_no_sizes_keeps_greedy_order(self):
        body = body_of("h(X) <- big(X), small(X).")
        order, plan = self.plan_order(body, None)
        assert order == ["big", "small"]
        assert not plan.reordered

    def test_bound_columns_discount_scan_estimates(self):
        # seed(X) binds X; big(X,Y) then probes on a bound column, which
        # beats scanning mid unbound even though mid is smaller than big.
        body = body_of("h(Y) <- seed(X), big(X,Y), mid(Y).")
        order, _ = self.plan_order(
            body, {"seed": 2, "big": 10000, "mid": 500})
        assert order == ["seed", "big", "mid"]

    def test_delta_position_still_forced_first(self):
        body = body_of("h(X,Z) <- a(X,Y), b(Y,Z).")
        plan = build_plan(body, first=1, builtins=standard_registry(),
                          sizes={"a": 100000, "b": 3})
        assert plan.steps[0][0] == 1

    def test_relation_sizes_helper_gates_on_magnitude(self):
        from repro.datalog.database import Database
        from repro.datalog.runtime import relation_sizes

        body = body_of("h(X) <- big(X), small(X).")
        db = Database()
        for i in range(100):
            db.add("big", (i,))
        db.add("small", (1,))
        stats = relation_sizes(body, db)
        # values are the live relations themselves (distinct-count source)
        assert stats["big"] is db.get("big")
        assert stats["small"] is db.get("small")
        tiny = Database()
        tiny.add("big", (1,))
        tiny.add("small", (1,))
        assert relation_sizes(body, tiny) is None  # all small: greedy
        assert relation_sizes(body, None) is None


class TestPlanReuse:
    def test_stale_plan_assumptions_trigger_rebuild(self):
        db = Database()
        db.add("p", ("a",))
        db.add("p", ("b",))
        body = body_of("h(X) <- p(X).")
        plan = build_plan(body, frozenset({"X"}),
                          builtins=standard_registry())
        # Reusing a plan compiled for bound X with unbound bindings must
        # fall back to a fresh plan, not misread the binding shape.
        results = list(solve(body, db, EvalContext(), plan=plan))
        assert {r["X"] for r in results} == {"a", "b"}

    def test_matching_assumptions_reuse_the_plan(self):
        db = Database()
        db.add("p", ("a",))
        body = body_of("h(X) <- p(X).")
        plan = build_plan(body, frozenset({"X"}),
                          builtins=standard_registry())
        results = list(solve(body, db, EvalContext(),
                             bindings={"X": "a"}, plan=plan))
        assert results == [{"X": "a"}]

    def test_flat_compilation_covers_pure_literal_bodies(self):
        body = body_of("h(X,Z) <- a(X,Y), b(Y,Z), !c(X).")
        plan = build_plan(body, builtins=standard_registry())
        assert plan.flat() is not None

    def test_flat_compilation_covers_filters(self):
        body = body_of("h(X) <- a(X), X > 3.")
        plan = build_plan(body, builtins=standard_registry())
        assert plan.flat() is not None

    def test_flat_compilation_covers_assignment_and_builtins(self):
        body = compiled_body("h(Y,N) <- p(X,S), Y = X + 1, strlen(S,N).")
        plan = build_plan(body, builtins=standard_registry())
        flat = plan.flat()
        assert flat is not None
        assert {"X", "S", "Y", "N"} <= set(flat.slot_of)

    def test_flat_compilation_rejects_quote_terms(self):
        body = body_of("h(X) <- says(X, [| q(X). |]).")
        plan = build_plan(body, builtins=standard_registry())
        assert plan.flat() is None


class TestSafetyAnalysis:
    def check(self, source):
        (rule,) = [s for s in parse_statements(source) if isinstance(s, Rule)]
        check_rule_safety(rule, standard_registry())

    def test_bindable_vars(self):
        body = compiled_body("h(Y) <- p(X), Y = X + 1, strlen(S,N).")
        names = bindable_vars(body, standard_registry())
        assert {"X", "Y", "N"} <= names

    def test_range_restricted_ok(self):
        self.check("h(X,Y) <- p(X), q(Y).")

    def test_head_var_from_assignment_ok(self):
        self.check("h(Y) <- p(X), Y = X * 2.")

    def test_head_var_from_builtin_output_ok(self):
        self.check("h(N) <- p(S), strlen(S,N).")

    def test_unbound_head_var_rejected(self):
        with pytest.raises(SafetyError):
            self.check("h(X,Y) <- p(X).")

    def test_quote_template_vars_exempt(self):
        # R stays a variable of the generated rule — legitimate
        self.check("active([| a(R) <- s(U,R). |]) <- d(U).")

    def test_aggregate_result_exempt(self):
        self.check("h(X,N) <- agg<<N = count(Y)>> e(X,Y).")


class TestSolveEdgeCases:
    def test_empty_conjunction_yields_once(self):
        results = list(solve((), Database(), EvalContext()))
        assert results == [{}]

    def test_seeded_bindings_respected(self):
        db = Database()
        db.add("p", ("a",))
        db.add("p", ("b",))
        body = body_of("h(X) <- p(X).")
        results = list(solve(body, db, EvalContext(), bindings={"X": "a"}))
        assert [r["X"] for r in results] == ["a"]

    def test_equality_binds_either_side(self):
        db = Database()
        db.add("p", (3,))
        left = body_of("h(Y) <- p(X), Y = X + 1.")
        right = body_of("h(Y) <- p(X), X + 1 = Y.")
        for body in (left, right):
            results = list(solve(body, db, EvalContext()))
            assert [r["Y"] for r in results] == [4]

    def test_builtin_output_conflict_filters(self):
        db = Database()
        db.add("p", ("abc", 3))
        db.add("p", ("abcd", 3))
        body = compiled_body("h(S) <- p(S,N), strlen(S,N).")
        results = list(solve(body, db, EvalContext(
            builtins=standard_registry())))
        assert [r["S"] for r in results] == ["abc"]
