"""Dependency graphs, SCCs, stratum assignment."""

import pytest

from repro.datalog.engine import normalize_rules
from repro.datalog.errors import StratificationError
from repro.datalog.parser import parse_statements
from repro.datalog.stratify import (
    assign_strata,
    dependency_graph,
    stratify,
    tarjan_sccs,
)
from repro.datalog.terms import Rule


def rules_of(source):
    return normalize_rules(
        [s for s in parse_statements(source) if isinstance(s, Rule)])


class TestSCC:
    def test_mutual_recursion_one_component(self):
        graph = dependency_graph(rules_of("p(X) <- q(X). q(X) <- p(X)."))
        components = tarjan_sccs(graph)
        assert frozenset({"p", "q"}) in components

    def test_chain_separate_components(self):
        graph = dependency_graph(rules_of("b(X) <- a(X). c(X) <- b(X)."))
        assert all(len(c) == 1 for c in tarjan_sccs(graph))

    def test_self_loop(self):
        graph = dependency_graph(rules_of("p(X,Y) <- p(X,Z), e(Z,Y)."))
        assert frozenset({"p"}) in tarjan_sccs(graph)


class TestStrata:
    def test_edb_is_stratum_zero(self):
        levels = assign_strata(dependency_graph(rules_of("p(X) <- e(X).")))
        assert levels["e"] == 0 and levels["p"] == 0

    def test_negation_lifts_stratum(self):
        levels = assign_strata(dependency_graph(
            rules_of("p(X) <- n(X), !q(X). q(X) <- e(X).")))
        assert levels["p"] == levels["q"] + 1

    def test_two_levels_of_negation(self):
        levels = assign_strata(dependency_graph(rules_of("""
            a(X) <- e(X).
            b(X) <- n(X), !a(X).
            c(X) <- n(X), !b(X).
        """)))
        assert levels["c"] > levels["b"] > levels["a"]

    def test_aggregation_lifts_stratum(self):
        levels = assign_strata(dependency_graph(
            rules_of("c(X,N) <- agg<<N = count(Y)>> e(X,Y).")))
        assert levels["c"] == levels["e"] + 1

    def test_recursion_through_negation_rejected(self):
        with pytest.raises(StratificationError):
            assign_strata(dependency_graph(
                rules_of("p(X) <- e(X), !q(X). q(X) <- e(X), !p(X).")))

    def test_recursion_through_aggregation_rejected(self):
        with pytest.raises(StratificationError):
            assign_strata(dependency_graph(rules_of("""
                p(X,N) <- agg<<N = count(Y)>> q(X,Y).
                q(X,N) <- p(X,N).
            """)))

    def test_positive_recursion_fine(self):
        levels = assign_strata(dependency_graph(
            rules_of("r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z).")))
        assert levels["r"] == 0

    def test_negation_below_recursion(self):
        # recursion over a negated *lower* predicate is stratifiable
        levels = assign_strata(dependency_graph(rules_of("""
            good(X) <- n(X), !bad(X).
            r(X,Y) <- good(X), e(X,Y).
            r(X,Z) <- r(X,Y), e(Y,Z).
        """)))
        assert levels["r"] >= levels["good"] >= 1


class TestStratifyPartition:
    def test_rules_grouped_by_level(self):
        strata = stratify(rules_of("""
            a(X) <- e(X).
            b(X) <- n(X), !a(X).
        """))
        assert len(strata) == 2
        assert strata[0].preds == frozenset({"a"})
        assert strata[1].preds == frozenset({"b"})

    def test_aggregate_rules_separated(self):
        strata = stratify(rules_of("""
            c(X,N) <- agg<<N = count(Y)>> e(X,Y).
            big(X) <- c(X,N), N > 2.
        """))
        agg_stratum = next(s for s in strata if s.agg_rules)
        assert agg_stratum.nonmonotone
        assert not agg_stratum.has_negation

    def test_nonmonotone_flag(self):
        strata = stratify(rules_of("p(X) <- n(X), !q(X). q(X) <- e(X)."))
        flags = {tuple(s.preds): s.nonmonotone for s in strata}
        assert flags[("q",)] is False
        assert flags[("p",)] is True
