"""Tabled top-down evaluation agrees with bottom-up."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.errors import SafetyError
from repro.datalog.parser import parse_atom, parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule
from repro.datalog.topdown import TopDownEngine, query_topdown

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- e(X,Y), r(Y,Z)."
LEFT_TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."


def rules_of(source):
    return [s for s in parse_statements(source) if isinstance(s, Rule)]


def db_with(facts):
    database = Database()
    for pred, rows in facts.items():
        for row in rows:
            database.add(pred, tuple(row))
    return database


def bottom_up(source, facts, pred):
    database = db_with(facts)
    evaluate(rules_of(source), database, EvalContext())
    return database.tuples(pred)


class TestBasics:
    def test_edb_goal(self):
        database = db_with({"e": [("a", "b")]})
        results = query_topdown([], database, parse_atom('e("a",X)'))
        assert [b["X"] for b in results] == ["b"]

    def test_bound_goal_true_false(self):
        database = db_with({"e": [("a", "b"), ("b", "c")]})
        engine = TopDownEngine(rules_of(TC), database)
        assert engine.holds(parse_atom('r("a","c")'))
        assert not engine.holds(parse_atom('r("c","a")'))

    def test_free_goal_enumerates(self):
        facts = {"e": [("a", "b"), ("b", "c"), ("c", "d")]}
        database = db_with(facts)
        results = query_topdown(rules_of(TC), database, parse_atom("r(X,Y)"))
        got = {(b["X"], b["Y"]) for b in results}
        assert got == bottom_up(TC, facts, "r")

    def test_left_recursion_terminates(self):
        facts = {"e": [("a", "b"), ("b", "c")]}
        database = db_with(facts)
        results = query_topdown(rules_of(LEFT_TC), database,
                                parse_atom('r("a",X)'))
        assert {b["X"] for b in results} == {"b", "c"}

    def test_cyclic_graph_terminates(self):
        facts = {"e": [("a", "b"), ("b", "a")]}
        database = db_with(facts)
        results = query_topdown(rules_of(TC), database, parse_atom('r("a",X)'))
        assert {b["X"] for b in results} == {"a", "b"}

    def test_builtins_in_body(self):
        source = "big(X,Y) <- v(X), Y = X * 2, Y > 4."
        database = db_with({"v": [(1,), (3,)]})
        results = query_topdown(rules_of(source), database,
                                parse_atom("big(X,Y)"))
        assert {(b["X"], b["Y"]) for b in results} == {(3, 6)}

    def test_ground_negation(self):
        source = "ok(X) <- v(X), !blocked(X)."
        database = db_with({"v": [("a",), ("b",)], "blocked": [("b",)]})
        results = query_topdown(rules_of(source), database, parse_atom("ok(X)"))
        assert {b["X"] for b in results} == {"a"}

    def test_aggregates_rejected(self):
        with pytest.raises(SafetyError):
            TopDownEngine(rules_of("c(N) <- agg<<N = count(X)>> v(X)."),
                          Database())

    def test_goal_directedness_skips_irrelevant(self):
        # two disconnected components; querying one should not derive the other
        facts = {"e": [("a", "b"), ("x", "y"), ("y", "z")]}
        database = db_with(facts)
        engine = TopDownEngine(rules_of(TC), database)
        engine.query(parse_atom('r("a",X)'))
        # the answer tables must not contain x-component reach facts
        all_answers = set()
        for table in engine._tables.values():
            all_answers |= table
        assert ("x", "z") not in all_answers


@given(st.integers(0, 2 ** 30))
@settings(max_examples=20, deadline=None)
def test_property_topdown_matches_bottomup(seed):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(rng.randint(2, 7))]
    edges = {(rng.choice(nodes), rng.choice(nodes))
             for _ in range(rng.randint(1, 14))}
    facts = {"e": sorted(edges)}
    truth = bottom_up(TC, facts, "r")
    database = db_with(facts)
    engine = TopDownEngine(rules_of(TC), database)
    source = rng.choice(nodes)
    answers = engine.query(parse_atom(f'r("{source}",X)'))
    assert {(source, b["X"]) for b in answers} == \
        {t for t in truth if t[0] == source}
