"""Unification: textbook laws, checked concretely and property-based."""

from hypothesis import given, settings, strategies as st

from repro.datalog.terms import Atom, Constant, Expr, Variable
from repro.datalog.unify import (
    apply_subst,
    apply_subst_atom,
    unify_atoms,
    unify_terms,
    walk,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestTerms:
    def test_var_with_constant(self):
        subst = unify_terms(X, a)
        assert walk(X, subst) == a

    def test_constant_mismatch(self):
        assert unify_terms(a, b) is None

    def test_var_with_var(self):
        subst = unify_terms(X, Y)
        assert walk(X, subst) == walk(Y, subst)

    def test_occurs_check(self):
        assert unify_terms(X, Expr("+", X, Constant(1))) is None

    def test_expr_structural(self):
        left = Expr("+", X, Constant(1))
        right = Expr("+", a, Constant(1))
        subst = unify_terms(left, right)
        assert walk(X, subst) == a

    def test_expr_op_mismatch(self):
        assert unify_terms(Expr("+", X, a), Expr("-", X, a)) is None

    def test_chained_bindings(self):
        subst = unify_terms(X, Y)
        subst = unify_terms(Y, a, subst)
        assert walk(X, subst) == a


class TestAtoms:
    def test_basic(self):
        subst = unify_atoms(Atom("p", (X, a)), Atom("p", (b, Y)))
        assert walk(X, subst) == b and walk(Y, subst) == a

    def test_pred_mismatch(self):
        assert unify_atoms(Atom("p", (X,)), Atom("q", (X,))) is None

    def test_arity_mismatch(self):
        assert unify_atoms(Atom("p", (X,)), Atom("p", (X, Y))) is None

    def test_shared_variable(self):
        assert unify_atoms(Atom("p", (X, X)), Atom("p", (a, b))) is None
        subst = unify_atoms(Atom("p", (X, X)), Atom("p", (a, a)))
        assert walk(X, subst) == a

    def test_apply_subst_atom(self):
        subst = {"X": a}
        assert apply_subst_atom(Atom("p", (X, Y)), subst) == Atom("p", (a, Y))


terms_strategy = st.recursive(
    st.one_of(
        st.sampled_from([X, Y, Z]),
        st.integers(-5, 5).map(Constant),
        st.sampled_from(["a", "b"]).map(Constant),
    ),
    lambda children: st.builds(
        Expr, st.sampled_from(["+", "-"]), children, children),
    max_leaves=6,
)


@given(terms_strategy, terms_strategy)
@settings(max_examples=150, deadline=None)
def test_property_unifier_actually_unifies(left, right):
    subst = unify_terms(left, right)
    if subst is not None:
        assert apply_subst(left, subst) == apply_subst(right, subst)


@given(terms_strategy, terms_strategy)
@settings(max_examples=150, deadline=None)
def test_property_symmetry(left, right):
    forward = unify_terms(left, right)
    backward = unify_terms(right, left)
    assert (forward is None) == (backward is None)


@given(terms_strategy)
@settings(max_examples=60, deadline=None)
def test_property_self_unification(term):
    assert unify_terms(term, term) is not None
