"""Binder on LBTrust (section 5.1): syntax, semantics, the pull rewrite."""

import pytest

from repro.datalog.errors import SafetyError
from repro.datalog.terms import Quote, Rule, Variable
from repro.languages.binder import BinderContext, parse_binder
from repro.workspace.workspace import Workspace


class TestParsing:
    def test_plain_rule_with_colon_dash(self):
        (rule,) = parse_binder("access(P,O,read) :- good(P), object(O).")
        assert rule.head.pred == "access"

    def test_says_literal_becomes_quoted_pattern(self):
        """Paper rule b2 → the bex1' translation."""
        (rule,) = parse_binder("access(P,O,read) :- bob says access(P,O,read).")
        says = rule.body[0].atom
        assert says.pred == "says"
        assert says.args[0].value == "bob"
        quote = says.args[2]
        assert isinstance(quote, Quote)
        assert quote.pattern.heads[0].functor == "access"

    def test_variable_speaker(self):
        (rule,) = parse_binder("trust(X) :- W says vouch(X), knows(W).")
        says = rule.body[0].atom
        assert says.args[0] == Variable("W")

    def test_mixed_arrow_styles(self):
        statements = parse_binder("a(X) :- b(X). c(X) <- d(X).")
        assert len(statements) == 2


class TestContext:
    def test_local_policy(self, make_system):
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        context = BinderContext(alice)
        context.load("""
            good(carol).
            object(f1).
            access(P,O,read) :- good(P), object(O).
        """)
        assert alice.tuples("access") == {("carol", "f1", "read")}

    def test_says_import_end_to_end(self, make_system):
        """Paper rule b2: alice imports access tuples bob says."""
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        BinderContext(alice).load(
            "access(P,O,read) :- bob says access(P,O,read).")
        bob.says(alice, 'access("dave","f2","read").')
        system.run()
        assert ("dave", "f2", "read") in alice.tuples("access")

    def test_untrusted_speaker_rejected_with_authorization(self, make_system):
        """Plain says1 activates anything said; the paper's architecture
        gates it with the mayWrite meta-constraint (section 4.1)."""
        system = make_system("hmac", authorization=True)
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        carol = system.create_principal("carol")
        alice.grant_write(bob, "access")
        BinderContext(alice).load(
            "access(P,O,read) :- bob says access(P,O,read).")
        carol.says(alice, 'access("dave","f2","read").')
        report = system.run()
        assert report.rejected == 1
        assert alice.tuples("access") == set()
        bob.says(alice, 'access("erin","f3","read").')
        system.run()
        assert ("erin", "f3", "read") in alice.tuples("access")

    def test_universe_guard_for_paper_b1(self, make_system):
        """Paper rule b1 is not range-restricted; the guard fixes it."""
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        strict = BinderContext(alice)
        with pytest.raises(SafetyError):
            strict.load("access(P,O,read) :- good(P).")
        guarded = BinderContext(alice, universe_guard="object")
        guarded.load("""
            good(carol). object(f1). object(f2).
            access(P,O,read) :- good(P).
        """)
        assert alice.tuples("access") == {
            ("carol", "f1", "read"), ("carol", "f2", "read")}

    def test_publish_pushes_derived_tuples(self, make_system):
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        bob_context = BinderContext(bob)
        bob_context.load("good(dave). vouch(X) :- good(X).")
        bob_context.publish("vouch", 1, alice)
        BinderContext(alice).load("trusted(X) :- bob says vouch(X).")
        system.run()
        assert alice.tuples("trusted") == {("dave",)}


class TestPullRewrite:
    """pull0/pull1 (section 5.1): imports become requests + responses."""

    def test_full_pull_cycle(self, make_system):
        system = make_system("hmac")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        # bob has data but no push rule — only the pull responder
        bob.assert_fact("rating", ("acme", "good"))
        bob_context = BinderContext(bob)
        bob_context.install_pull()
        # alice's policy imports bob's ratings; pull0 generates the request
        alice_context = BinderContext(alice)
        alice_context.install_pull()
        alice_context.load("approved(C) :- bob says rating(C, good).")
        report = system.run()
        assert alice.tuples("approved") == {("acme",)}
        # a request actually crossed the network
        assert any(f[2] is not None for f in alice.tuples("says"))

    def test_pull_only_requests_matching_facts(self, make_system):
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        bob.assert_fact("rating", ("acme", "good"))
        bob.assert_fact("rating", ("globex", "bad"))
        bob.assert_fact("unrelated", ("noise",))
        BinderContext(bob).install_pull()
        alice_context = BinderContext(alice)
        alice_context.install_pull()
        alice_context.load("approved(C) :- bob says rating(C, good).")
        system.run()
        assert alice.tuples("approved") == {("acme",)}
        # only rating facts were shipped back, not `unrelated`
        activated = {
            bob.workspace.rule_text(f[2])
            for f in alice.tuples("says") if f[0] == "bob"
        }
        assert not any("unrelated" in text for text in activated)

    def test_no_request_to_self(self, make_system):
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        context = BinderContext(alice)
        context.install_pull()
        context.load("ok(X) :- alice says good(X).")
        system.run()
        requests = [f for f in alice.tuples("says")
                    if f[1] == "alice" and f[0] == "alice"]
        # pull0's X != me guard: no self-request generated
        assert all(
            "request" not in alice.workspace.rule_text(f[2])
            for f in requests
        )

    def test_pull_responds_to_later_facts(self, make_system):
        """Continuous semantics: data arriving after the request flows."""
        system = make_system("plaintext")
        alice = system.create_principal("alice")
        bob = system.create_principal("bob")
        BinderContext(bob).install_pull()
        alice_context = BinderContext(alice)
        alice_context.install_pull()
        alice_context.load("approved(C) :- bob says rating(C, good).")
        system.run()
        assert alice.tuples("approved") == set()
        bob.assert_fact("rating", ("late", "good"))
        system.run()
        assert alice.tuples("approved") == {("late",)}
