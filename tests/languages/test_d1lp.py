"""D1LP statement front-end."""

import pytest

from repro.datalog.errors import ConstraintViolation, ParseError
from repro.languages.d1lp import run_policy, run_statement


def system_with(make_system, names):
    system = make_system("plaintext", delegation=True)
    principals = {n: system.create_principal(n) for n in names}
    for principal in principals.values():
        principal.load("permission(A) -> prin(A). creditOK(C) -> string(C).")
    return system, principals


class TestDelegateStatements:
    def test_plain_delegate(self, make_system):
        system, ps = system_with(make_system, ["alice", "bob"])
        run_statement(ps["alice"], "delegate permission to bob")
        assert ("alice", "bob", "permission") in ps["alice"].tuples("delegates")

    def test_delegate_with_depth(self, make_system):
        system, ps = system_with(make_system, ["alice", "bob", "carol"])
        run_statement(ps["alice"], "delegate permission to bob depth 0.")
        system.run()
        with pytest.raises(ConstraintViolation):
            ps["bob"].delegate("carol", "permission")

    def test_delegate_with_width(self, make_system):
        system, ps = system_with(make_system, ["alice", "bob", "eve"])
        run_statement(ps["alice"], "delegate permission to bob width bob")
        with pytest.raises(ConstraintViolation):
            ps["alice"].delegate("eve", "permission")

    def test_unknown_statement(self, make_system):
        _, ps = system_with(make_system, ["alice"])
        with pytest.raises(ParseError):
            run_statement(ps["alice"], "frobnicate the permissions")


class TestThresholdStatements:
    def test_threshold(self, make_system):
        system, ps = system_with(make_system, ["bank", "b1", "b2", "b3"])
        bank = ps["bank"]
        run_statement(bank, "threshold 2 of creditBureau on creditOK")
        for name in ("b1", "b2", "b3"):
            bank.workspace.assert_fact("pringroup", (name, "creditBureau"))
        ps["b1"].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("creditOKOK") == set()
        ps["b2"].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("creditOKOK") == {("acme",)}

    def test_weighted_threshold(self, make_system):
        system, ps = system_with(make_system, ["bank", "big", "small"])
        bank = ps["bank"]
        run_statement(bank, "weighted threshold 3 of creditBureau on creditOK")
        for name, weight in (("big", 3), ("small", 1)):
            bank.workspace.assert_fact("pringroup", (name, "creditBureau"))
            bank.workspace.assert_fact("weight", (name, weight))
        ps["small"].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("creditOKOK") == set()
        ps["big"].says(bank, 'creditOK("acme").')
        system.run()
        assert bank.tuples("creditOKOK") == {("acme",)}

    def test_run_policy_multiple_statements(self, make_system):
        system, ps = system_with(make_system, ["alice", "bob"])
        run_policy(ps["alice"], """
            delegate permission to bob depth 1.
            threshold 2 of creditBureau on creditOK.
        """)
        assert ("alice", "bob", "permission") in ps["alice"].tuples("delegates")
