"""SeNDlog (section 5.2): translation, reachability, path-vector."""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.pretty import format_statement
from repro.datalog.terms import Quote
from repro.languages.sendlog import install_sendlog, parse_sendlog

REACHABILITY = """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s1b: reachable(S,D)@S :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
"""

#: Authenticated path-vector (the paper: "one can easily construct more
#: complex secure networking protocols, such as an authenticated
#: path-vector protocol").  Paths are value lists; loop-freedom comes from
#: the list_not_member check.
PATH_VECTOR = """
At S:
p1: path(S,D,P) :- neighbor(S,D), list_nil(E), list_cons(D,E,P0),
    list_cons(S,P0,P).
p1b: path(S,D,P)@S :- path(S,D,P).
p2: path(Z,D,P2)@Z :- neighbor(S,Z), W says path(S,D,P),
    list_not_member(Z,P), list_cons(Z,P,P2).
"""


class TestTranslation:
    def test_ls1_ls2_shapes(self):
        """The paper's own translation: s1→ls1, s2→ls2."""
        blocks = parse_sendlog("""
            At S:
            s1: reachable(S,D) :- neighbor(S,D).
            s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
        """)
        assert len(blocks) == 1
        ls1, ls2 = blocks[0].statements
        assert format_statement(ls1) == "reachable(me,D) <- neighbor(me,D)."
        assert format_statement(ls2) == (
            "says(me,Z,[| reachable(Z,D). |]) <- neighbor(me,Z), "
            "says(W,me,[| reachable(me,D). |]).")

    def test_named_context_not_substituted(self):
        blocks = parse_sendlog("At alice:\nr1: local(X) :- base(X).")
        assert not blocks[0].is_generic
        assert blocks[0].context == "alice"

    def test_multiple_blocks(self):
        blocks = parse_sendlog("""
            At alice:
            a1: p(X) :- q(X).
            At bob:
            b1: r(X) :- s(X).
        """)
        assert [b.context for b in blocks] == ["alice", "bob"]

    def test_export_to_variable_destination(self):
        blocks = parse_sendlog("At S:\ne1: msg(D)@D :- target(S,D).")
        (rule,) = blocks[0].statements
        says = rule.heads[0]
        assert says.pred == "says"
        assert isinstance(says.args[2], Quote)

    def test_missing_block_header_rejected(self):
        with pytest.raises(ParseError):
            parse_sendlog("p(X) :- q(X).")

    def test_unknown_named_context_rejected(self, make_system):
        system = make_system("plaintext")
        system.create_principal("alice")
        with pytest.raises(ParseError):
            install_sendlog(system, "At ghost:\np(X) :- q(X).")


class TestReachability:
    def build(self, make_system, edges, auth="hmac"):
        system = make_system(auth)
        names = sorted({n for edge in edges for n in edge})
        principals = {n: system.create_principal(n) for n in names}
        install_sendlog(system, REACHABILITY)
        for source, target in edges:
            principals[source].assert_fact("neighbor", (source, target))
            principals[target].assert_fact("neighbor", (target, source))
        system.run(max_rounds=40)
        return system, principals

    def test_chain_converges(self, make_system):
        _, principals = self.build(make_system,
                                   [("a", "b"), ("b", "c"), ("c", "d")])
        for name, principal in principals.items():
            reached = {d for (s, d) in principal.tuples("reachable")
                       if s == name}
            assert set(principals) - {name} <= reached

    def test_disconnected_components_stay_apart(self, make_system):
        _, principals = self.build(make_system, [("a", "b"), ("x", "y")])
        a_reach = {d for (s, d) in principals["a"].tuples("reachable")}
        assert "x" not in a_reach and "y" not in a_reach

    def test_ring_converges(self, make_system):
        _, principals = self.build(
            make_system, [("a", "b"), ("b", "c"), ("c", "a")],
            auth="plaintext")
        for name, principal in principals.items():
            reached = {d for (s, d) in principal.tuples("reachable") if s == name}
            assert set(principals) <= reached | {name}

    def test_messages_are_authenticated(self, make_system):
        system, principals = self.build(make_system, [("a", "b")],
                                        auth="hmac")
        # every delivered reachable fact arrived through a verifying export
        b = principals["b"]
        says_from_a = [f for f in b.tuples("says") if f[0] == "a"]
        assert says_from_a
        exports = {f[2] for f in b.tuples("export")}
        assert all(f[2] in exports for f in says_from_a)


class TestPathVector:
    def test_paths_computed_with_loop_freedom(self, make_system):
        system = make_system("plaintext")
        names = ["a", "b", "c"]
        principals = {n: system.create_principal(n) for n in names}
        install_sendlog(system, PATH_VECTOR)
        edges = [("a", "b"), ("b", "c")]
        for source, target in edges:
            principals[source].assert_fact("neighbor", (source, target))
            principals[target].assert_fact("neighbor", (target, source))
        system.run(max_rounds=40)
        c_paths = principals["c"].tuples("path")
        # c learns a path to a: c-b-a (as lists, stored head-first)
        paths_to_a = {p for (s, d, p) in c_paths if s == "c" and d == "a"}
        assert ("c", "b", "a") in paths_to_a
        # loop-freedom: no path visits a node twice
        for (_s, _d, path) in c_paths:
            assert len(set(path)) == len(path)
