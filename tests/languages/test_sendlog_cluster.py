"""SeNDlog on a multi-node cluster: location transparency at scale.

The PR-3 acceptance bar: existing SeNDlog programs must produce
*identical* results whether every principal has its own physical node
(the default) or principals are packed onto a small cluster via the
``loc`` table — and traffic between a node pair must travel as batched
messages, not one message per fact.
"""

from repro import LBTrustSystem
from repro.languages.sendlog import install_sendlog

REACHABILITY = """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s1b: reachable(S,D)@S :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
"""


def build_ring(size, hosts=None, auth="hmac", mode="bsp"):
    """A reachability ring; ``hosts`` maps principal index -> node name."""
    system = LBTrustSystem(auth=auth, seed=11, mode=mode)
    names = [f"n{i}" for i in range(size)]
    principals = {}
    for i, name in enumerate(names):
        node = hosts[i] if hosts is not None else None
        principals[name] = system.create_principal(name, node=node)
    install_sendlog(system, REACHABILITY)
    for i in range(size):
        a, b = names[i], names[(i + 1) % size]
        principals[a].assert_fact("neighbor", (a, b))
        principals[b].assert_fact("neighbor", (b, a))
    return system, principals


def reachability_of(principals):
    return {
        name: principal.tuples("reachable")
        for name, principal in principals.items()
    }


class TestSendlogOnCluster:
    def test_identical_results_on_three_node_cluster(self):
        size = 6
        reference_system, reference = build_ring(size)
        reference_system.run(max_rounds=80)
        expected = reachability_of(reference)
        # every principal learned the full ring
        for name, reached in expected.items():
            assert {d for (s, d) in reached if s == name} | {name} == \
                set(reference)

        hosts = [f"host{i % 3}" for i in range(size)]
        cluster_system, clustered = build_ring(size, hosts=hosts)
        report = cluster_system.run(max_rounds=80)
        assert reachability_of(clustered) == expected
        assert report.rejected == 0
        # three physical nodes, not six
        assert {p.node for p in clustered.values()} == set(hosts)

    def test_clustered_ring_batches_traffic(self):
        size = 6
        hosts = [f"host{i % 3}" for i in range(size)]
        system, _ = build_ring(size, hosts=hosts, auth="plaintext")
        report = system.run(max_rounds=80)
        # more facts moved than wire messages: coalescing happened
        assert report.delivered > report.batches > 0
        assert system.network.total.messages == report.batches

    def test_bit_identical_under_every_scheduler_and_packing(self):
        """The PR-4 acceptance bar: a 6-principal ring fixpoints
        bit-identically under single-node hosting, BSP clustering onto
        3 and 6 hosts, and async overlapped scheduling — the program
        never changes, only where and how it runs (predNode's promise,
        machine-executed)."""
        size = 6
        reference_system, reference = build_ring(size, hosts=["solo"] * size)
        reference_system.run(max_rounds=80)
        expected = reachability_of(reference)
        three_hosts = [f"host{i % 3}" for i in range(size)]
        six_hosts = [f"host{i}" for i in range(size)]
        for hosts, mode in [
            (three_hosts, "bsp"),
            (six_hosts, "bsp"),
            (three_hosts, "async"),
            (six_hosts, "async"),
            (["solo"] * size, "async"),
        ]:
            system, principals = build_ring(size, hosts=hosts, mode=mode)
            report = system.run(max_rounds=80)
            assert reachability_of(principals) == expected, (hosts, mode)
            assert report.rejected == 0

    def test_async_says_attribution_survives_the_exchange(self):
        """Authenticated import is mode-independent: under the
        overlapped scheduler every principal still hears its neighbors
        through the says machinery (heard facts name real speakers)."""
        size = 4
        hosts = [f"host{i % 2}" for i in range(size)]
        system, principals = build_ring(size, hosts=hosts, mode="async")
        system.run(max_rounds=80)
        names = set(principals)
        for name, principal in principals.items():
            speakers = {speaker for speaker, _ref
                        in principal.tuples("heard")}
            assert speakers  # it heard someone
            assert speakers <= names - {name}

    def test_single_host_cluster_stays_silent_on_the_wire(self):
        # all principals colocated: everything is local delivery with
        # zero latency, but still batched envelopes
        size = 4
        hosts = ["hub"] * size
        system, principals = build_ring(size, hosts=hosts, auth="plaintext")
        report = system.run(max_rounds=80)
        assert report.virtual_time == 0.0
        for name, principal in principals.items():
            reached = {d for (s, d) in principal.tuples("reachable")
                       if s == name}
            assert reached | {name} == set(principals)
