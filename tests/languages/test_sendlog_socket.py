"""SeNDlog over real sockets: the transport is invisible to the program.

The PR-5 acceptance bar: a 6-principal reachability ring fixpoints
**bit-identically** whether the exchange runs over the single-process
virtual-clock network or over real TCP — in-process loopback
(``LBTrustSystem(network=SocketNetwork())``) and genuinely distributed
(three OS processes via the :mod:`repro.cluster.launch` coordinator) —
in both ``bsp`` and ``async`` scheduling modes.  Authenticated ``says``
import must survive the hop across process boundaries: every worker
rebuilds the system deterministically from the spec, so HMAC secrets
agree without ever crossing the wire, and signature verification runs at
the receiving process.
"""

import pytest

from repro import LBTrustSystem
from repro.cluster.launch import launch, spec_nodes, system_spec
from repro.languages.sendlog import install_sendlog
from repro.net import SocketNetwork

REACHABILITY = """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s1b: reachable(S,D)@S :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
"""

SIZE = 6
NAMES = [f"n{i}" for i in range(SIZE)]
HOSTS = [f"host{i % 3}" for i in range(SIZE)]


def ring_facts():
    facts = []
    for i in range(SIZE):
        a, b = NAMES[i], NAMES[(i + 1) % SIZE]
        facts.append((a, "neighbor", (a, b)))
        facts.append((b, "neighbor", (b, a)))
    return facts


def build_system(network=None, mode="bsp"):
    system = LBTrustSystem(auth="hmac", seed=11, mode=mode, network=network)
    for name, node in zip(NAMES, HOSTS):
        system.create_principal(name, node=node)
    install_sendlog(system, REACHABILITY)
    for pname, pred, values in ring_facts():
        system.principal(pname).assert_fact(pred, values)
    return system


def reachability_of(system):
    return {name: system.principal(name).tuples("reachable")
            for name in NAMES}


@pytest.fixture(scope="module")
def expected():
    system = build_system()
    system.run(max_rounds=80)
    fixpoint = reachability_of(system)
    # sanity: the full ring was learned
    for name, reached in fixpoint.items():
        assert {d for (s, d) in reached if s == name} | {name} == set(NAMES)
    return fixpoint


class TestInProcessSocketSystem:
    @pytest.mark.parametrize("mode", ["bsp", "async"])
    def test_ring_bit_identical_over_loopback(self, mode, expected):
        with SocketNetwork() as network:
            system = build_system(network=network, mode=mode)
            report = system.run(max_rounds=80)
            assert reachability_of(system) == expected
            assert report.rejected == 0
            assert report.batches == network.total.messages > 0


class TestThreeProcessRing:
    @pytest.mark.parametrize("mode", ["bsp", "async"])
    def test_ring_bit_identical_across_three_processes(self, mode, expected):
        spec = system_spec(
            principals=list(zip(NAMES, HOSTS)),
            auth="hmac", seed=11,
            sendlog=REACHABILITY,
            facts=ring_facts(),
            collect=["reachable", "heard"],
        )
        assert spec_nodes(spec) == ["host0", "host1", "host2"]
        report = launch(spec, mode=mode, timeout=60)
        assert report.procs == 3
        got = {name: report.principal_relations[name]["reachable"]
               for name in NAMES}
        assert got == expected
        # authenticated import succeeded across process boundaries
        assert report.rejected == 0
        assert report.delivered > 0
        assert report.runtime.messages > 0
        # says-attribution survived: every principal heard real speakers
        for name in NAMES:
            speakers = {speaker for speaker, _ref
                        in report.principal_relations[name]["heard"]}
            assert speakers
            assert speakers <= set(NAMES) - {name}
