"""The meta-model (Figure 1) as an executable schema.

E2 in the experiment index: the paper's Figure 1 is a specification; here
we check our reification satisfies it as *dynamic constraints* in a live
workspace.
"""

from repro.datalog.parser import parse_rule
from repro.meta.model import (
    ACTIVE_PRED,
    ALL_META_PREDS,
    META_MODEL_DECLARATIONS,
    PAPER_META_PREDS,
)
from repro.workspace.workspace import Workspace


class TestSchemaSets:
    def test_paper_relations_all_present(self):
        expected = {
            "rule", "head", "body", "atom", "functor", "arg", "negated",
            "term", "variable", "vname", "constant", "value",
            "predicate", "pname",
        }
        assert PAPER_META_PREDS == expected

    def test_extensions_documented(self):
        assert {"arity", "factrule", "quoteterm"} <= ALL_META_PREDS

    def test_active_is_separate(self):
        assert ACTIVE_PRED not in ALL_META_PREDS


class TestDeclarationsHold:
    def test_reified_rules_satisfy_figure_1(self):
        """Load Figure 1 as constraints, then activate assorted rules; the
        constraints must hold over the reified meta facts."""
        workspace = Workspace("w")
        workspace.load(META_MODEL_DECLARATIONS)
        workspace.load("""
            p(X) <- q(X), !r(X).
            s(X,Y) <- p(X), t(X,Y).
            base("k").
        """)
        workspace.add_rule(parse_rule("u(U) <- says(U,me,[| ok(C). |])."))
        # a violated Figure 1 constraint would have raised on commit
        assert workspace.tuples("rule")
        assert workspace.tuples("head")
        assert workspace.tuples("functor")

    def test_head_body_reference_reified_rules(self):
        workspace = Workspace("w")
        ref = workspace.add_rule("p(X) <- q(X).")
        heads = {f for f in workspace.tuples("head") if f[0] == ref}
        bodies = {f for f in workspace.tuples("body") if f[0] == ref}
        assert len(heads) == 1 and len(bodies) == 1

    def test_predicate_contains_workspace_preds(self):
        # paper: "a unique entry for each predicate defined in the
        # workspace (including predicate)"
        workspace = Workspace("w")
        workspace.load("p(X) <- q(X). base(1).")
        pred_names = {f[0] for f in workspace.tuples("predicate")}
        assert {"p", "q", "base"} <= pred_names
        assert "predicate" in pred_names

    def test_pname_identity(self):
        workspace = Workspace("w")
        workspace.load("p(X) <- q(X).")
        for name, pname in workspace.tuples("pname"):
            assert name == pname


class TestReflection:
    def test_rules_can_query_program_structure(self):
        """Reflection: an active rule reads the meta-model."""
        workspace = Workspace("w")
        workspace.load("""
            p(X) <- q(X).
            p2(X) <- q(X), r(X).
            bodycount(R,N) <- agg<<N = count(A)>> body(R,A).
        """)
        counts = {n for (_, n) in workspace.tuples("bodycount")}
        assert {1, 2} <= counts

    def test_meta_constraint_blocks_bad_program(self):
        """A meta-constraint restricting allowable programs (section 3.3)."""
        import pytest
        from repro.datalog.errors import ConstraintViolation

        workspace = Workspace("w")
        # forbid any rule whose body reads the predicate `secret`
        workspace.add_constraint(
            'rule(R), body(R,A), functor(A,"secret") -> banned().')
        workspace.load("ok(X) <- pub(X).")       # fine
        with pytest.raises(ConstraintViolation):
            workspace.load("leak(X) <- secret(X).")
        # the offending rule was rolled back entirely
        assert all(
            "leak" not in str(f) for f in workspace.tuples("functor")
        )
