"""Quote compilation — including the paper's own section 3.3 example."""

from repro.datalog.parser import parse_statements
from repro.datalog.terms import (
    Atom,
    BuiltinCall,
    Comparison,
    Constant,
    Constraint,
    Literal,
    Rule,
    Variable,
)
from repro.datalog.builtins import standard_registry
from repro.meta.quote import compile_constraint, compile_rule


def literals_of(items):
    return [(i.atom.pred, i.atom.args) for i in items if isinstance(i, Literal)]


def pred_sequence(items):
    return [i.atom.pred for i in items if isinstance(i, Literal)]


class TestPaperTranslation:
    def test_section_3_3_owner_access(self):
        """The paper's worked translation:

        owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,read).
            ⇒ owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P)
            -> access(U,P,read).
        """
        source = 'owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,"read").'
        constraint = parse_statements(source)[0]
        compiled = compile_constraint(constraint, "alice", None)
        preds = pred_sequence(compiled.lhs[0])
        assert preds[0] == "owner"
        assert "rule" in preds
        assert "body" in preds
        assert "atom" in preds
        assert "functor" in preds
        # the bare head metavar A imposes its own head/atom joins at most;
        # the functor join must bind the same P used on the RHS
        functor = next(i for i in compiled.lhs[0]
                       if isinstance(i, Literal) and i.atom.pred == "functor")
        assert functor.atom.args[1] == Variable("P")
        # no arity constraint: T2* is a star
        body_atom_var = functor.atom.args[0]
        arities = [i for i in compiled.lhs[0]
                   if isinstance(i, Literal) and i.atom.pred == "arity"
                   and i.atom.args[0] == body_atom_var]
        assert arities == []

    def test_fact_pattern_requires_factrule_and_arity(self):
        source = 'p(U,C) <- says(U,me,[| creditOK(C). |]).'
        rule = parse_statements(source)[0]
        compiled = compile_rule(rule, "bank", None)
        preds = pred_sequence(compiled.body)
        assert "factrule" in preds
        assert "arity" in preds
        value = next(i for i in compiled.body
                     if isinstance(i, Literal) and i.atom.pred == "value")
        assert value.atom.args[1] == Variable("C")

    def test_rule_pattern_no_factrule(self):
        source = "p(U) <- says(U,me,[| A <- q(X), A*. |])."
        compiled = compile_rule(parse_statements(source)[0], "alice", None)
        assert "factrule" not in pred_sequence(compiled.body)

    def test_anonymous_positions_unconstrained(self):
        source = "p(U) <- says(U,me,[| q(_,X). |])."
        compiled = compile_rule(parse_statements(source)[0], "alice", None)
        args = [i for i in compiled.body
                if isinstance(i, Literal) and i.atom.pred == "arg"]
        # only position 1 (X) emits an arg join; position 0 is don't-care
        assert len(args) == 1
        assert args[0].atom.args[1] == Constant(1)

    def test_eq_pattern_binding(self):
        source = "p(R) <- active(R), R = [| q(X) <- A*. |]."
        compiled = compile_rule(parse_statements(source)[0], "alice", None)
        rule_literal = next(i for i in compiled.body
                            if isinstance(i, Literal) and i.atom.pred == "rule")
        assert rule_literal.atom.args[0] == Variable("R")

    def test_negated_pattern_atom_emits_negated(self):
        source = "p(U) <- says(U,me,[| h(X) <- !q(X). |])."
        compiled = compile_rule(parse_statements(source)[0], "alice", None)
        assert "negated" in pred_sequence(compiled.body)


class TestMeResolution:
    def test_me_in_atom_args(self):
        rule = parse_statements("p(X) <- says(me,X,R), q(R).")[0]
        compiled = compile_rule(rule, "alice", None)
        says = compiled.body[0]
        assert says.atom.args[0] == Constant("alice")

    def test_me_inside_quote(self):
        rule = parse_statements("p(U) <- says(U,me,[| ok(me). |]).")[0]
        compiled = compile_rule(rule, "alice", None)
        values = [i for i in compiled.body
                  if isinstance(i, Literal) and i.atom.pred == "value"]
        assert any(i.atom.args[1] == Constant("alice") for i in values)

    def test_me_in_head_template(self):
        rule = parse_statements("says(me,U,[| d(me,U). |]) <- t(U).")[0]
        compiled = compile_rule(rule, "alice", None)
        quote = compiled.heads[0].args[2]
        assert quote.pattern.heads[0].args[0] == Constant("alice")

    def test_me_in_comparison(self):
        rule = parse_statements("p(X) <- q(X), X != me.")[0]
        compiled = compile_rule(rule, "alice", None)
        comparison = compiled.body[1]
        assert comparison.right == Constant("alice")


class TestBuiltinResolution:
    def test_builtin_literal_becomes_call(self):
        registry = standard_registry()
        rule = parse_statements("p(X,N) <- q(X), strlen(X,N).")[0]
        compiled = compile_rule(rule, None, registry)
        assert isinstance(compiled.body[1], BuiltinCall)
        assert compiled.body[1].name == "strlen"

    def test_non_builtin_stays_literal(self):
        registry = standard_registry()
        rule = parse_statements("p(X) <- mystery(X).")[0]
        compiled = compile_rule(rule, None, registry)
        assert isinstance(compiled.body[0], Literal)

    def test_negated_builtin_rejected(self):
        import pytest
        from repro.datalog.errors import SafetyError
        registry = standard_registry()
        rule = parse_statements("p(X) <- q(X), !strlen(X,3).")[0]
        with pytest.raises(SafetyError):
            compile_rule(rule, None, registry)

    def test_constraint_sides_compiled(self):
        registry = standard_registry()
        constraint = parse_statements("p(N) -> int(N).")[0]
        compiled = compile_constraint(constraint, None, registry)
        assert isinstance(compiled.rhs[0][0], BuiltinCall)
