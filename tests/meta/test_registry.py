"""Rule interning and Figure 1 reification."""

import pytest

from repro.datalog.errors import ReproError, SafetyError
from repro.datalog.parser import parse_rule
from repro.datalog.terms import PatternValue, RuleRef
from repro.meta.model import ALL_META_PREDS, PAPER_META_PREDS
from repro.meta.registry import RuleRegistry, is_open_fact_pattern


class TestInterning:
    def setup_method(self):
        self.registry = RuleRegistry()

    def test_same_rule_same_ref(self):
        left = self.registry.intern(parse_rule("p(X) <- q(X)."))
        right = self.registry.intern(parse_rule("p(X) <- q(X)."))
        assert left == right
        assert len(self.registry) == 1

    def test_alpha_variants_share_ref(self):
        left = self.registry.intern(parse_rule("p(X,Y) <- q(X,Y)."))
        right = self.registry.intern(parse_rule("p(A,B) <- q(A,B)."))
        assert left == right

    def test_different_rules_different_refs(self):
        left = self.registry.intern(parse_rule("p(X) <- q(X)."))
        right = self.registry.intern(parse_rule("p(X) <- r(X)."))
        assert left != right

    def test_rule_of_round_trip(self):
        rule = parse_rule('access(P,O,"read") <- good(P), object(O).')
        ref = self.registry.intern(rule)
        assert self.registry.rule_of(ref) == rule

    def test_canonical_text_reparses_to_same_ref(self):
        ref = self.registry.intern(parse_rule("p(Xyz) <- q(Xyz, 42)."))
        text = self.registry.canonical_text(ref)
        assert self.registry.intern(parse_rule(text)) == ref

    def test_unknown_ref_rejected(self):
        with pytest.raises(ReproError):
            self.registry.rule_of(RuleRef(999))

    def test_me_rules_rejected(self):
        with pytest.raises(SafetyError):
            self.registry.intern(parse_rule("p(X) <- says(me,X)."))

    def test_me_inside_quote_rejected(self):
        with pytest.raises(SafetyError):
            self.registry.intern(
                parse_rule("p(U) <- says(U,X,[| ok(me). |])."))

    def test_refs_in_value_finds_nested(self):
        ref = self.registry.intern(parse_rule("p(1)."))
        assert list(self.registry.refs_in_value(ref)) == [ref]
        assert list(self.registry.refs_in_value(("a", (ref, 1)))) == [ref]
        assert list(self.registry.refs_in_value("plain")) == []


class TestReification:
    def setup_method(self):
        self.registry = RuleRegistry()

    def facts_for(self, source):
        ref = self.registry.intern(parse_rule(source))
        return ref, self.registry.meta_facts(ref)

    def preds(self, facts):
        return {pred for pred, _ in facts}

    def test_fact_rule(self):
        ref, facts = self.facts_for('good("carol").')
        assert ("rule", (ref,)) in facts
        assert ("factrule", (ref,)) in facts
        head_ids = [f[1][1] for f in facts if f[0] == "head"]
        assert len(head_ids) == 1
        atom_id = head_ids[0]
        assert ("functor", (atom_id, "good")) in facts
        assert ("arity", (atom_id, 1)) in facts
        arg_facts = [f for f in facts if f[0] == "arg"]
        assert len(arg_facts) == 1
        term_id = arg_facts[0][1][2]
        assert ("constant", (term_id,)) in facts
        assert ("value", (term_id, "carol")) in facts

    def test_rule_with_body(self):
        ref, facts = self.facts_for("p(X) <- q(X), !r(X).")
        assert ("factrule", (ref,)) not in facts
        body_atoms = [f[1][1] for f in facts if f[0] == "body"]
        assert len(body_atoms) == 2
        negated = [f[1][0] for f in facts if f[0] == "negated"]
        assert len(negated) == 1

    def test_variables_reified(self):
        _, facts = self.facts_for("p(X) <- q(X).")
        names = {f[1][1] for f in facts if f[0] == "vname"}
        assert names == {"X"}
        assert any(f[0] == "variable" for f in facts)

    def test_predicate_and_pname(self):
        _, facts = self.facts_for("p(X) <- q(X).")
        pred_names = {f[1][0] for f in facts if f[0] == "predicate"}
        assert pred_names == {"p", "q"}
        assert ("pname", ("p", "p")) in facts

    def test_quote_arg_reified_as_pattern_value(self):
        _, facts = self.facts_for('req([| ok(C). |]).')
        quote_terms = [f[1][0] for f in facts if f[0] == "quoteterm"]
        assert len(quote_terms) == 1
        values = [f for f in facts if f[0] == "value"]
        assert any(isinstance(f[1][1], PatternValue) for f in values)

    def test_only_known_meta_preds_emitted(self):
        _, facts = self.facts_for(
            "active([| a(R) <- s(U,R), R = [| P(T*) <- A*. |]. |]) <- d(U,P).")
        assert self.preds(facts) <= ALL_META_PREDS | PAPER_META_PREDS

    def test_meta_facts_stable(self):
        ref, first = self.facts_for("p(X) <- q(X).")
        again = self.registry.meta_facts(ref)
        assert first == again


class TestTemplates:
    def setup_method(self):
        self.registry = RuleRegistry()

    def eval_term(self, term, bindings):
        from repro.datalog.runtime import EvalContext, eval_term
        return eval_term(term, bindings, EvalContext())

    def test_ground_fact_template(self):
        rule = parse_rule('h(T) <- b(U,P,N), T = [| d(U,P,N-1). |].')
        quote = rule.body[1].right
        ref = self.registry.instantiate_template(
            quote, {"U": "bob", "P": "perm", "N": 3}, self.eval_term)
        generated = self.registry.canonical_text(ref)
        assert generated == 'd("bob","perm",2).'

    def test_unbound_vars_stay_variables(self):
        rule = parse_rule("h(T) <- b(U), T = [| a(R) <- s(U,R). |].")
        quote = rule.body[1].right
        ref = self.registry.instantiate_template(quote, {"U": "bob"},
                                                 self.eval_term)
        text = self.registry.canonical_text(ref)
        assert '"bob"' in text and "V0" in text

    def test_functor_metavar_substituted(self):
        rule = parse_rule("h(T) <- b(P), T = [| a(R) <- s(R), R = [| P(T2*) <- A*. |]. |].")
        quote = rule.body[1].right
        ref = self.registry.instantiate_template(quote, {"P": "perm"},
                                                 self.eval_term)
        assert '"perm"' in self.registry.canonical_text(ref) or \
            "perm(" in self.registry.canonical_text(ref)

    def test_open_fact_pattern_detection(self):
        open_quote = parse_rule("h(T) <- b(X), T = [| p(Y). |].").body[1].right
        closed_quote = parse_rule("h(T) <- b(X), T = [| p(X). |].").body[1].right
        assert is_open_fact_pattern(open_quote.pattern)
        # after substituting X the closed one is ground
        from repro.meta.registry import _substitute_pattern
        substituted = _substitute_pattern(closed_quote.pattern, {"X": 1},
                                          self.eval_term)
        assert not is_open_fact_pattern(substituted)
