"""Batch wire format and the size-capped per-link message batcher."""

import json

import pytest

from repro.cluster.quiescence import TicketLedger
from repro.datalog.errors import NetworkError
from repro.meta.registry import RuleRegistry
from repro.net.batch import MessageBatcher
from repro.net.network import SimulatedNetwork
from repro.net.transport import (
    decode_batch_message,
    encode_batch_item,
    encode_batch_message,
    encode_fact_message,
)


def make_network(*nodes):
    network = SimulatedNetwork()
    for node in nodes:
        network.add_node(node)
    return network


class TestBatchCodec:
    def test_roundtrip_multiple_items(self):
        registry = RuleRegistry()
        items = [
            encode_batch_item("p", (1, "x"), registry, to="alice"),
            encode_batch_item("q", (b"\x01",), registry),
        ]
        blob = encode_batch_message(items, round_stamp=7)
        round_stamp, decoded = decode_batch_message(blob, registry)
        assert round_stamp == 7
        assert decoded == [("alice", "p", (1, "x")), ("", "q", (b"\x01",))]

    def test_single_fact_message_decodes_as_one_item_batch(self):
        registry = RuleRegistry()
        blob = encode_fact_message("p", (1,), registry, to="bob")
        round_stamp, decoded = decode_batch_message(blob, registry)
        assert round_stamp == 0
        assert decoded == [("bob", "p", (1,))]

    def test_malformed_batch_rejected(self):
        registry = RuleRegistry()
        with pytest.raises(NetworkError):
            decode_batch_message(b"not json", registry)
        bad = json.dumps({"round": "x", "batch": []}).encode()
        with pytest.raises(NetworkError):
            decode_batch_message(bad, registry)


class TestMessageBatcher:
    def test_coalesces_per_link(self):
        network = make_network("a", "b", "c")
        batcher = MessageBatcher(network, RuleRegistry())
        for i in range(10):
            batcher.add("a", "b", "p", (i,))
        batcher.add("a", "c", "p", (99,))
        sent = batcher.flush(round_stamp=3)
        assert sent == 2
        assert network.total.messages == 2
        assert batcher.sent_items == 11
        deliveries = network.deliver_all()
        by_link = {(src, dst): blob for src, dst, blob in deliveries}
        round_stamp, items = decode_batch_message(
            by_link[("a", "b")], RuleRegistry())
        assert round_stamp == 3
        assert {fact for _to, _pred, fact in items} == {(i,) for i in range(10)}

    def test_size_cap_flushes_early(self):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry(), max_bytes=256)
        for i in range(50):
            batcher.add("a", "b", "p", (i, "some payload text"))
        batcher.flush()
        assert network.total.messages > 1
        # every message respects the cap (within one item's slack)
        for _src, _dst, blob in network.deliver_all():
            assert len(blob) <= 256 + 64

    def test_ledger_sees_early_flushes(self):
        network = make_network("a", "b")
        ledger = TicketLedger()
        batcher = MessageBatcher(network, RuleRegistry(), max_bytes=256,
                                 ledger=ledger)
        for i in range(50):
            batcher.add("a", "b", "p", (i, "some payload text"),
                        round_stamp=4)
        batcher.flush(round_stamp=4)
        assert ledger.issued == network.total.messages
        assert ledger.issued > 1

    def test_flush_with_nothing_pending_is_a_noop(self):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry())
        assert batcher.flush() == 0
        assert batcher.pending_items() == 0
