"""Batch wire format and the size-capped per-link message batcher."""

import json

import pytest

from repro.cluster.quiescence import TicketLedger
from repro.datalog.errors import NetworkError
from repro.meta.registry import RuleRegistry
from repro.net.batch import MessageBatcher
from repro.net.network import SimulatedNetwork
from repro.net.transport import (
    decode_batch_message,
    encode_batch_item,
    encode_batch_message,
    encode_batch_message_dict,
    encode_fact_message,
)


def make_network(*nodes):
    network = SimulatedNetwork()
    for node in nodes:
        network.add_node(node)
    return network


class TestBatchCodec:
    def test_roundtrip_multiple_items(self):
        registry = RuleRegistry()
        items = [
            encode_batch_item("p", (1, "x"), registry, to="alice"),
            encode_batch_item("q", (b"\x01",), registry),
        ]
        blob = encode_batch_message(items, round_stamp=7)
        round_stamp, decoded = decode_batch_message(blob, registry)
        assert round_stamp == 7
        assert decoded == [("alice", "p", (1, "x")), ("", "q", (b"\x01",))]

    def test_single_fact_message_decodes_as_one_item_batch(self):
        registry = RuleRegistry()
        blob = encode_fact_message("p", (1,), registry, to="bob")
        round_stamp, decoded = decode_batch_message(blob, registry)
        assert round_stamp == 0
        assert decoded == [("bob", "p", (1,))]

    def test_malformed_batch_rejected(self):
        registry = RuleRegistry()
        with pytest.raises(NetworkError):
            decode_batch_message(b"not json", registry)
        bad = json.dumps({"round": "x", "batch": []}).encode()
        with pytest.raises(NetworkError):
            decode_batch_message(bad, registry)


class TestDictCompressedCodec:
    def test_roundtrip_multiple_items(self):
        registry = RuleRegistry()
        items = [("alice", "p", (1, "x")), ("", "q", (b"\x01",)),
                 ("alice", "p", (1, "y"))]
        blob = encode_batch_message_dict(items, registry, round_stamp=7)
        round_stamp, decoded = decode_batch_message(blob, registry)
        assert round_stamp == 7
        assert decoded == items

    def test_repeated_values_stored_once(self):
        registry = RuleRegistry()
        items = [("", "reach", ("node-with-a-long-name", i % 3))
                 for i in range(40)]
        compressed = encode_batch_message_dict(items, registry, 1)
        legacy = encode_batch_message(
            [encode_batch_item(pred, fact, registry, to=to)
             for to, pred, fact in items], 1)
        # one dictionary entry for the shared string, not forty
        assert compressed.count(b"node-with-a-long-name") == 1
        assert len(compressed) < len(legacy) / 3
        assert decode_batch_message(compressed, registry) == \
            decode_batch_message(legacy, registry)

    def test_classified_as_batch_frame(self):
        from repro.net.transport import frame_kind

        registry = RuleRegistry()
        blob = encode_batch_message_dict([("", "p", (1,))], registry, 2)
        assert frame_kind(blob) == "batch"

    @pytest.mark.parametrize("payload", [
        {"round": "x", "names": [], "dict": [], "rows": []},
        {"round": 0, "names": [1], "dict": [], "rows": []},
        {"round": 0, "names": [], "dict": ["notag"], "rows": []},
        {"round": 0, "names": ["", "p"], "dict": [], "rows": [[0]]},
        {"round": 0, "names": ["", "p"], "dict": [], "rows": [[0, 5]]},
        {"round": 0, "names": ["", "p"], "dict": [], "rows": [[0, -1]]},
        {"round": 0, "names": ["", "p"], "dict": [], "rows": [[0, True]]},
        {"round": 0, "names": ["", "p"],
         "dict": [{"t": "int", "v": 1}], "rows": [[0, 1, 3]]},
    ])
    def test_malformed_compressed_payloads_rejected(self, payload):
        registry = RuleRegistry()
        blob = json.dumps(payload).encode("utf-8")
        with pytest.raises(NetworkError):
            decode_batch_message(blob, registry)


class TestMessageBatcher:
    def test_coalesces_per_link(self):
        network = make_network("a", "b", "c")
        batcher = MessageBatcher(network, RuleRegistry())
        for i in range(10):
            batcher.add("a", "b", "p", (i,))
        batcher.add("a", "c", "p", (99,))
        sent = batcher.flush(round_stamp=3)
        assert sent == 2
        assert network.total.messages == 2
        assert batcher.sent_items == 11
        deliveries = network.deliver_all()
        by_link = {(src, dst): blob for src, dst, blob in deliveries}
        round_stamp, items = decode_batch_message(
            by_link[("a", "b")], RuleRegistry())
        assert round_stamp == 3
        assert {fact for _to, _pred, fact in items} == {(i,) for i in range(10)}

    def test_size_cap_flushes_early(self):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry(), max_bytes=256)
        for i in range(50):
            batcher.add("a", "b", "p", (i, "some payload text"))
        batcher.flush()
        assert network.total.messages > 1
        # every message respects the cap (within one item's slack)
        for _src, _dst, blob in network.deliver_all():
            assert len(blob) <= 256 + 64

    def test_ledger_sees_early_flushes(self):
        network = make_network("a", "b")
        ledger = TicketLedger()
        batcher = MessageBatcher(network, RuleRegistry(), max_bytes=256,
                                 ledger=ledger)
        for i in range(50):
            batcher.add("a", "b", "p", (i, "some payload text"),
                        round_stamp=4)
        batcher.flush(round_stamp=4)
        assert ledger.issued == network.total.messages
        assert ledger.issued > 1

    def test_flush_with_nothing_pending_is_a_noop(self):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry())
        assert batcher.flush() == 0
        assert batcher.pending_items() == 0

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(NetworkError):
            MessageBatcher(make_network("a"), RuleRegistry(),
                           wire_format="gzip")


class TestWireFormatInterop:
    """The mixed-version contract: dict default, legacy byte-for-byte."""

    FACTS = [("p", (i % 4, "shared text", i)) for i in range(20)]

    def _drain(self, wire_format):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry(),
                                 wire_format=wire_format)
        for pred, fact in self.FACTS:
            batcher.add("a", "b", pred, fact, to="alice")
        batcher.flush(round_stamp=9)
        [(_, _, blob)] = network.deliver_all()
        return blob

    def test_legacy_format_is_byte_identical_to_old_encoder(self):
        registry = RuleRegistry()
        expected = encode_batch_message(
            [encode_batch_item(pred, fact, registry, to="alice")
             for pred, fact in self.FACTS], 9)
        assert self._drain("legacy") == expected

    def test_dict_batcher_matches_canonical_encoder(self):
        registry = RuleRegistry()
        expected = encode_batch_message_dict(
            [("alice", pred, fact) for pred, fact in self.FACTS],
            registry, 9)
        assert self._drain("dict") == expected

    def test_both_formats_decode_identically(self):
        registry = RuleRegistry()
        legacy = decode_batch_message(self._drain("legacy"), registry)
        compressed = decode_batch_message(self._drain("dict"), registry)
        assert compressed == legacy
        assert compressed == (9, [("alice", pred, fact)
                                  for pred, fact in self.FACTS])

    def test_dict_format_is_smaller_on_repetitive_traffic(self):
        assert len(self._drain("dict")) < len(self._drain("legacy")) / 2

    def test_dict_format_respects_size_cap(self):
        network = make_network("a", "b")
        batcher = MessageBatcher(network, RuleRegistry(), max_bytes=256)
        for i in range(50):
            batcher.add("a", "b", "p", (i, f"unique payload text {i}"))
        batcher.flush()
        registry = RuleRegistry()
        seen = set()
        for _src, _dst, blob in network.deliver_all():
            assert len(blob) <= 256 + 64
            _stamp, items = decode_batch_message(blob, registry)
            seen.update(fact for _to, _pred, fact in items)
        assert seen == {(i, f"unique payload text {i}") for i in range(50)}
