"""Simulated network: FIFO delivery, latency, virtual clock, stats."""

import pytest

from repro.datalog.errors import NetworkError
from repro.net.network import SimulatedNetwork


def network(**kwargs):
    net = SimulatedNetwork(**kwargs)
    for node in ("a", "b", "c"):
        net.add_node(node)
    return net


class TestDelivery:
    def test_fifo_per_link(self):
        net = network()
        for i in range(5):
            net.send("a", "b", f"m{i}".encode())
        payloads = [p for _, _, p in net.deliver_all()]
        assert payloads == [f"m{i}".encode() for i in range(5)]

    def test_unknown_node_rejected(self):
        net = network()
        with pytest.raises(NetworkError):
            net.send("a", "zz", b"x")

    def test_local_delivery_zero_latency(self):
        net = network(default_latency=5.0)
        net.send("a", "a", b"self")
        net.deliver_all()
        assert net.clock == 0.0

    def test_clock_advances_with_latency(self):
        net = network(default_latency=2.5)
        net.send("a", "b", b"x")
        net.deliver_all()
        assert net.clock == 2.5

    def test_arrival_order_across_links(self):
        net = network()
        net.set_latency("a", "b", 10.0)
        net.set_latency("a", "c", 1.0)
        net.send("a", "b", b"slow")
        net.send("a", "c", b"fast")
        deliveries = net.deliver_all()
        assert [p for _, _, p in deliveries] == [b"fast", b"slow"]

    def test_deliver_next_one_at_a_time(self):
        net = network()
        net.send("a", "b", b"1")
        net.send("a", "b", b"2")
        assert net.pending() == 2
        assert net.deliver_next()[2] == b"1"
        assert net.pending() == 1

    def test_empty_deliver(self):
        assert network().deliver_next() is None
        assert network().deliver_all() == []

    def test_jitter_is_deterministic_with_seed(self):
        first = network(jitter=1.0, seed=7)
        second = network(jitter=1.0, seed=7)
        first.send("a", "b", b"x")
        second.send("a", "b", b"x")
        first.deliver_all()
        second.deliver_all()
        assert first.clock == second.clock

    def test_latency_inspection_does_not_consume_jitter(self):
        """Regression: latency() used to draw from the jitter RNG, so
        merely inspecting a link perturbed the seeded stream and broke
        run-to-run determinism."""
        first = network(jitter=1.0, seed=7)
        second = network(jitter=1.0, seed=7)
        # inspect links on one network only — must not desync the runs
        for _ in range(5):
            first.latency("a", "b")
            first.latency("b", "c")
        clocks = []
        for net in (first, second):
            for i in range(4):
                net.send("a", "b", f"m{i}".encode())
                net.send("b", "c", f"m{i}".encode())
            net.deliver_all()
            clocks.append(net.clock)
        assert clocks[0] == clocks[1]

    def test_latency_is_pure_and_jitter_free(self):
        net = network(default_latency=2.0, jitter=1.0, seed=3)
        assert net.latency("a", "b") == 2.0
        assert net.latency("a", "b") == net.latency("a", "b")


class TestStats:
    def test_message_and_byte_counters(self):
        net = network()
        net.send("a", "b", b"1234")
        net.send("a", "b", b"56")
        net.send("b", "c", b"x")
        assert net.total.messages == 3
        assert net.total.bytes == 7
        link = net.link_stats("a", "b")
        assert link.messages == 2 and link.bytes == 6
        assert net.link_stats("c", "a").messages == 0

    def test_reset(self):
        net = network()
        net.send("a", "b", b"x")
        net.reset_stats()
        assert net.total.messages == 0
        assert net.link_stats("a", "b").messages == 0

    def test_asymmetric_latency(self):
        net = network()
        net.set_latency("a", "b", 1.0, symmetric=False)
        assert net.latency("a", "b") == 1.0
        assert net.latency("b", "a") == net.default_latency

    def test_link_stats_returns_the_stored_entry(self):
        """Regression: link_stats() on an unrecorded link returned a
        fresh LinkStats not stored in net.stats, so callers mutating the
        returned object silently lost their counts."""
        net = network()
        stats = net.link_stats("a", "b")
        stats.messages += 7
        assert net.link_stats("a", "b").messages == 7
        assert net.stats[("a", "b")] is stats
        # traffic keeps accumulating into the same object
        net.send("a", "b", b"x")
        assert stats.messages == 8

    def test_reset_stats_clears_fifo_watermarks_between_runs(self):
        """Regression: reset_stats() left _last_sent and the clock
        stale, so a "fresh" run inherited the previous run's per-link
        delivery floor (arrivals clamped to the old watermark)."""
        net = network(default_latency=5.0)
        net.send("a", "b", b"run1")
        net.deliver_all()
        assert net.clock == 5.0
        net.reset_stats()
        assert net.clock == 0.0
        net.send("a", "b", b"run2")
        net.deliver_all()
        # a truly fresh run: arrival at plain latency, not max(5.0, ...)
        assert net.clock == 5.0
        assert net.total.messages == 1

    def test_reset_stats_keeps_timing_while_messages_in_flight(self):
        net = network(default_latency=2.0)
        net.send("a", "b", b"early")
        net.send("a", "b", b"queued")
        net.deliver_next()
        net.reset_stats()   # one message still queued: timing survives
        assert net.clock == 2.0
        assert net.pending() == 1
        net.deliver_all()
        assert net.clock == 2.0

    def test_full_reset_drops_queue_and_timing(self):
        net = network(default_latency=2.0)
        net.send("a", "b", b"x")
        net.reset()
        assert net.pending() == 0
        assert net.clock == 0.0
        assert net.total.messages == 0
        assert net.deliver_next() is None
