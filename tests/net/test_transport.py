"""Wire codec: tagged values, rules-as-text, cross-registry transfer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.errors import NetworkError
from repro.datalog.parser import parse_rule, parse_term
from repro.datalog.terms import PatternValue, PredPartition, Quote
from repro.meta.registry import RuleRegistry
from repro.net.transport import (
    decode_fact_message,
    decode_value,
    encode_fact_message,
    encode_value,
)


class TestValues:
    def setup_method(self):
        self.registry = RuleRegistry()

    def round_trip(self, value):
        return decode_value(encode_value(value, self.registry), self.registry)

    @pytest.mark.parametrize("value", [
        "hello", 42, -1, 3.5, True, False, b"\x00\xff", (), ("a", 1, ("b",)),
    ])
    def test_plain_values(self, value):
        assert self.round_trip(value) == value

    def test_bool_not_collapsed_to_int(self):
        assert self.round_trip(True) is True
        assert self.round_trip(1) == 1 and self.round_trip(1) is not True

    def test_rule_ref(self):
        ref = self.registry.intern(parse_rule("p(X) <- q(X)."))
        assert self.round_trip(ref) == ref

    def test_pattern_value(self):
        quote = parse_term("[| ok(C). |]")
        assert isinstance(quote, Quote)
        value = PatternValue(quote.pattern)
        assert self.round_trip(value) == value

    def test_pred_partition(self):
        assert self.round_trip(PredPartition("export", ("alice",))) == \
            PredPartition("export", ("alice",))

    def test_unserializable_rejected(self):
        with pytest.raises(NetworkError):
            encode_value(object(), self.registry)


class TestMessages:
    def test_fact_round_trip(self):
        registry = RuleRegistry()
        ref = registry.intern(parse_rule('good("carol").'))
        blob = encode_fact_message("export", ("bob", "alice", ref, "sig"),
                                   registry, to="bob")
        to, pred, fact = decode_fact_message(blob, registry)
        assert to == "bob" and pred == "export"
        assert fact == ("bob", "alice", ref, "sig")

    def test_cross_registry_transfer(self):
        """Decoding into a different registry re-interns by canonical text."""
        sender = RuleRegistry()
        receiver = RuleRegistry()
        # skew the receiver's id counter so refs cannot accidentally align
        receiver.intern(parse_rule("unrelated(1)."))
        ref = sender.intern(parse_rule("p(X) <- q(X, 42)."))
        blob = encode_fact_message("says", ("a", "b", ref), sender, to="b")
        _, _, fact = decode_fact_message(blob, receiver)
        received_ref = fact[2]
        assert receiver.canonical_text(received_ref) == sender.canonical_text(ref)

    def test_garbage_rejected(self):
        with pytest.raises(NetworkError):
            decode_fact_message(b"not json at all \xff", RuleRegistry())
        with pytest.raises(NetworkError):
            decode_fact_message(b'{"no": "pred"}', RuleRegistry())

    def test_byte_count_is_payload_length(self):
        registry = RuleRegistry()
        blob = encode_fact_message("p", ("x",), registry, to="y")
        assert isinstance(blob, bytes) and len(blob) > 10


@given(st.recursive(
    st.one_of(st.text(max_size=10), st.integers(-1000, 1000),
              st.booleans(), st.binary(max_size=8)),
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=8,
))
@settings(max_examples=100, deadline=None)
def test_property_value_round_trip(value):
    registry = RuleRegistry()
    assert decode_value(encode_value(value, registry), registry) == value
