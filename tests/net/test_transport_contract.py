"""The transport contract, run against BOTH network implementations.

The cluster scheduler consumes a duck-typed network surface —
``add_node`` / ``send`` / ``deliver_next`` / ``deliver_all`` /
``pending`` / ``link_stats`` / ``clock`` — from either the virtual-clock
:class:`SimulatedNetwork` or the TCP :class:`SocketNetwork`.  Every test
here is parametrized over both, so the contract (per-link FIFO, stats
accounting, queue semantics) can never drift apart between transports.
"""

import pytest

from repro.datalog.errors import NetworkError
from repro.net import SimulatedNetwork, SocketNetwork
from repro.net.transport import (
    decode_reply_frame,
    decode_request_frame,
    encode_reply_frame,
    encode_request_frame,
    frame_kind,
)


@pytest.fixture(params=["simulated", "socket"])
def net(request):
    if request.param == "simulated":
        network = SimulatedNetwork()
        yield network
    else:
        network = SocketNetwork(delivery_timeout=10.0)
        try:
            yield network
        finally:
            network.close()


@pytest.fixture
def abc(net):
    for name in ("a", "b", "c"):
        net.add_node(name)
    return net


class TestTopology:
    def test_nodes_listed(self, abc):
        assert abc.nodes() == {"a", "b", "c"}

    def test_add_node_is_idempotent(self, abc):
        abc.add_node("a")
        assert abc.nodes() == {"a", "b", "c"}

    def test_send_to_unknown_node_rejected(self, abc):
        with pytest.raises(NetworkError):
            abc.send("a", "zz", b"x")
        with pytest.raises(NetworkError):
            abc.send("zz", "a", b"x")


class TestDeliverySemantics:
    def test_fifo_per_link(self, abc):
        for i in range(10):
            abc.send("a", "b", f"m{i}".encode())
        payloads = [p for _, _, p in abc.deliver_all()]
        assert payloads == [f"m{i}".encode() for i in range(10)]

    def test_fifo_survives_interleaved_links(self, abc):
        for i in range(6):
            abc.send("a", "b", f"ab{i}".encode())
            abc.send("a", "c", f"ac{i}".encode())
            abc.send("b", "c", f"bc{i}".encode())
        per_link = {}
        for src, dst, payload in abc.deliver_all():
            per_link.setdefault((src, dst), []).append(payload)
        assert per_link[("a", "b")] == [f"ab{i}".encode() for i in range(6)]
        assert per_link[("a", "c")] == [f"ac{i}".encode() for i in range(6)]
        assert per_link[("b", "c")] == [f"bc{i}".encode() for i in range(6)]

    def test_delivery_carries_src_dst_payload(self, abc):
        abc.send("a", "b", b"hello")
        assert abc.deliver_next() == ("a", "b", b"hello")

    def test_self_send_delivers(self, abc):
        abc.send("b", "b", b"self")
        assert abc.deliver_next() == ("b", "b", b"self")

    def test_pending_counts_undelivered(self, abc):
        assert abc.pending() == 0
        abc.send("a", "b", b"1")
        abc.send("a", "b", b"2")
        assert abc.pending() == 2
        abc.deliver_next()
        assert abc.pending() == 1
        abc.deliver_next()
        assert abc.pending() == 0

    def test_deliver_next_none_when_quiet(self, abc):
        assert abc.deliver_next() is None

    def test_deliver_all_empty_when_quiet(self, abc):
        assert abc.deliver_all() == []

    def test_deliver_all_drains_everything(self, abc):
        for i in range(5):
            abc.send("a", "c", str(i).encode())
        assert len(abc.deliver_all()) == 5
        assert abc.pending() == 0
        assert abc.deliver_next() is None

    def test_large_payload_roundtrip(self, abc):
        blob = bytes(range(256)) * 512  # 128 KiB, beyond one recv chunk
        abc.send("a", "b", blob)
        assert abc.deliver_next() == ("a", "b", blob)

    def test_empty_payload_roundtrip(self, abc):
        abc.send("a", "b", b"")
        assert abc.deliver_next() == ("a", "b", b"")


class TestStatsAccounting:
    def test_message_and_byte_counters(self, abc):
        abc.send("a", "b", b"1234")
        abc.send("a", "b", b"56")
        abc.send("b", "c", b"x")
        assert abc.total.messages == 3
        assert abc.total.bytes == 7
        link = abc.link_stats("a", "b")
        assert link.messages == 2 and link.bytes == 6
        assert abc.link_stats("c", "a").messages == 0

    def test_link_stats_returns_the_stored_entry(self, abc):
        stats = abc.link_stats("a", "b")
        abc.send("a", "b", b"xyz")
        assert stats.messages == 1 and stats.bytes == 3
        assert abc.link_stats("a", "b") is stats

    def test_bytes_count_payload_only(self, abc):
        # framing/envelope overhead must not leak into the traffic
        # measure, or reports stop being comparable across transports
        abc.send("a", "b", b"12345")
        assert abc.total.bytes == 5

    def test_reset_stats_zeroes_counters(self, abc):
        abc.send("a", "b", b"x")
        abc.deliver_all()
        abc.reset_stats()
        assert abc.total.messages == 0
        assert abc.link_stats("a", "b").messages == 0


class TestClock:
    def test_clock_monotone_over_deliveries(self, abc):
        before = abc.clock
        abc.send("a", "b", b"x")
        abc.deliver_all()
        assert abc.clock >= before


class TestServeFrames:
    """Serve-plane request/reply frames ride the same transports as the
    delta exchange — framing, FIFO and classification must hold on both."""

    def test_request_frame_roundtrip(self, abc):
        abc.send("a", "b", encode_request_frame(7, "query", {"q": "p(X)"}))
        src, dst, blob = abc.deliver_next()
        assert (src, dst) == ("a", "b")
        assert frame_kind(blob) == "request"
        assert decode_request_frame(blob) == (7, "query", {"q": "p(X)"})

    def test_reply_frame_roundtrip(self, abc):
        abc.send("b", "a", encode_reply_frame(7, True, {"answers": []}))
        src, dst, blob = abc.deliver_next()
        assert (src, dst) == ("b", "a")
        assert frame_kind(blob) == "reply"
        assert decode_reply_frame(blob) == (7, True, {"answers": []}, "")

    def test_error_reply_carries_the_message(self, abc):
        abc.send("b", "a", encode_reply_frame(9, False, error="nope"))
        _, _, blob = abc.deliver_next()
        assert decode_reply_frame(blob) == (9, False, {}, "nope")

    def test_request_reply_fifo_per_link(self, abc):
        # a request conversation interleaved with opaque batch traffic on
        # the same link keeps its order — the client relies on this to
        # match replies by id without a reorder buffer
        abc.send("a", "b", encode_request_frame(1, "ping"))
        abc.send("a", "b", b'{"round":0,"batch":[]}')
        abc.send("a", "b", encode_request_frame(2, "ping"))
        kinds = [frame_kind(p) for _, _, p in abc.deliver_all()]
        assert kinds == ["request", "batch", "request"]

    def test_reply_ids_preserve_send_order(self, abc):
        for request_id in (3, 1, 2):
            abc.send("b", "a", encode_reply_frame(request_id))
        ids = [decode_reply_frame(p)[0] for _, _, p in abc.deliver_all()]
        assert ids == [3, 1, 2]
