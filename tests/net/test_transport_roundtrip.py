"""Hypothesis round-trip property for the wire codec.

``decode_value(encode_value(v))`` must reproduce ``v`` exactly — same
value, same type — for every tagged value type the codec supports,
including arbitrarily nested lists, partition terms, quoted patterns and
interned rules.  The pattern/rule cases additionally exercise the
pretty-printer → lexer → parser pipeline (canonical text is the wire
representation), which is where asymmetries hide: this property caught
``format_value`` emitting raw newlines/tabs inside string literals that
the lexer then refused to re-read (fixed in PR 3).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.terms import (
    AtomPattern,
    Constant,
    PatternValue,
    PredPartition,
    Rule,
    RulePattern,
    Star,
    Variable,
)
from repro.meta.registry import RuleRegistry
from repro.net.transport import (
    decode_batch_message,
    decode_reply_frame,
    decode_request_frame,
    decode_value,
    encode_batch_item,
    encode_batch_message,
    encode_batch_message_dict,
    encode_reply_frame,
    encode_request_frame,
    encode_value,
    frame_kind,
)

# -- strategies -------------------------------------------------------------

# Lexer keywords can never be functors/predicates (the parser rejects
# them in every position), so they are outside the codec's value domain.
_KEYWORDS = {"me", "true", "false", "agg"}
identifiers = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,8}",
                            fullmatch=True).filter(
                                lambda name: name not in _KEYWORDS)
var_names = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,6}", fullmatch=True)

# Scalars the codec tags directly.  Floats: NaN can never satisfy an
# equality round-trip (NaN != NaN) and infinities are not valid strict
# JSON — both are rejected at encode time in real traffic, so the
# property quantifies over finite floats.
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=24),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.builds(
            PredPartition,
            identifiers,
            st.lists(children, min_size=1, max_size=3).map(tuple),
        ),
    ),
    max_leaves=12,
)

# Constants that can appear inside a quoted pattern must survive the
# pretty-print → re-parse pipeline, which is exactly what this property
# is probing.
pattern_constants = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.text(max_size=20),
    st.binary(min_size=1, max_size=8),
)

pattern_args = st.one_of(
    st.builds(Constant, pattern_constants),
    st.builds(Variable, var_names),
    st.just(Star(None)),
)

atom_patterns = st.builds(
    lambda functor, args: AtomPattern(functor, tuple(args)),
    identifiers,
    st.lists(pattern_args, min_size=1, max_size=3),
)

# has_arrow tracks body presence: `p(X).` is a fact pattern, an arrow
# with an empty body is unrepresentable in source syntax (parser invariant)
rule_patterns = st.builds(
    lambda heads, body: RulePattern(tuple(heads), tuple(body), bool(body)),
    st.lists(atom_patterns, min_size=1, max_size=2),
    st.lists(atom_patterns, max_size=2),
)

pattern_values = rule_patterns.map(PatternValue)


def wire_roundtrip(value, registry):
    encoded = json.loads(json.dumps(encode_value(value, registry)))
    return decode_value(encoded, registry)


class TestValueRoundtrip:
    @given(value=values)
    @settings(max_examples=200, deadline=None)
    def test_tagged_values_roundtrip(self, value):
        registry = RuleRegistry()
        decoded = wire_roundtrip(value, registry)
        assert decoded == value
        assert type(decoded) is type(value)

    @given(pattern=pattern_values)
    @settings(max_examples=200, deadline=None)
    def test_quoted_patterns_roundtrip(self, pattern):
        registry = RuleRegistry()
        decoded = wire_roundtrip(pattern, registry)
        assert isinstance(decoded, PatternValue)
        # compare through the canonical renderer: Star(None) vs Star("")
        # and variable spellings must already be identical here
        from repro.datalog.pretty import format_pattern

        assert format_pattern(decoded.pattern) == \
            format_pattern(pattern.pattern)

    @given(constant=pattern_constants)
    @settings(max_examples=150, deadline=None)
    def test_interned_rules_roundtrip(self, constant):
        from repro.datalog.terms import Atom

        registry = RuleRegistry()
        rule = Rule((Atom("marker", (Constant(constant),)),))
        ref = registry.intern(rule)
        decoded = wire_roundtrip(ref, registry)
        assert decoded == ref
        assert registry.canonical_text(decoded) == \
            registry.canonical_text(ref)

    @given(constant=pattern_constants)
    @settings(max_examples=150, deadline=None)
    def test_cross_registry_rule_transfer(self, constant):
        from repro.datalog.terms import Atom

        sender, receiver = RuleRegistry(), RuleRegistry()
        rule = Rule((Atom("marker", (Constant(constant),)),))
        ref = sender.intern(rule)
        encoded = json.loads(json.dumps(encode_value(ref, sender)))
        decoded = decode_value(encoded, receiver)
        assert receiver.canonical_text(decoded) == sender.canonical_text(ref)


class TestBatchRoundtrip:
    @given(
        facts=st.lists(
            st.tuples(identifiers, st.lists(values, min_size=1,
                                            max_size=3).map(tuple)),
            min_size=1, max_size=5),
        round_stamp=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_batches_roundtrip(self, facts, round_stamp):
        registry = RuleRegistry()
        items = [encode_batch_item(pred, fact, registry, to="x")
                 for pred, fact in facts]
        blob = encode_batch_message(items, round_stamp)
        decoded_stamp, decoded = decode_batch_message(blob, registry)
        assert decoded_stamp == round_stamp
        assert decoded == [("x", pred, fact) for pred, fact in facts]

    @given(
        facts=st.lists(
            st.tuples(identifiers, st.lists(values, min_size=1,
                                            max_size=3).map(tuple)),
            min_size=1, max_size=8),
        round_stamp=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_dict_compressed_batches_roundtrip(self, facts, round_stamp):
        """Dictionary-compressed envelopes round-trip every value type,
        and decode to exactly what a legacy peer's envelope decodes to —
        the mixed-version interop contract, quantified."""
        registry = RuleRegistry()
        triples = [("x", pred, fact) for pred, fact in facts]
        blob = encode_batch_message_dict(triples, registry, round_stamp)
        decoded_stamp, decoded = decode_batch_message(blob, registry)
        assert decoded_stamp == round_stamp
        assert decoded == triples
        legacy = encode_batch_message(
            [encode_batch_item(pred, fact, registry, to="x")
             for pred, fact in facts], round_stamp)
        assert decode_batch_message(legacy, registry) == \
            (decoded_stamp, decoded)

    @given(
        facts=st.lists(
            st.tuples(identifiers, st.lists(values, min_size=1,
                                            max_size=3).map(tuple)),
            min_size=1, max_size=8),
        round_stamp=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_batcher_splicing_matches_canonical_encoder(self, facts,
                                                        round_stamp):
        """The batcher's incremental text-splicing emitter must produce
        the same bytes as the canonical one-shot encoder, for any items
        in any order (dictionary indices depend on insertion order)."""
        from repro.net.batch import MessageBatcher

        registry = RuleRegistry()

        class _Sink:
            blob = None

            def send(self, src, dst, blob):
                self.blob = blob

        sink = _Sink()
        batcher = MessageBatcher(sink, registry)
        for pred, fact in facts:
            batcher.add("a", "b", pred, fact, to="x")
        batcher.flush(round_stamp)
        expected = encode_batch_message_dict(
            [("x", pred, fact) for pred, fact in facts],
            registry, round_stamp)
        assert sink.blob == expected


# JSON-safe request/reply bodies: the serve layer runs fact values through
# encode_value before they reach the frame codec, so the frame property
# quantifies over arbitrary JSON objects, not tagged values.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)
json_bodies = st.dictionaries(
    st.text(max_size=12),
    st.recursive(
        json_scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=8), children, max_size=3),
        ),
        max_leaves=10,
    ),
    max_size=4,
)

request_ids = st.integers(min_value=0, max_value=2 ** 62)


class TestServeFrameRoundtrip:
    @given(request_id=request_ids,
           op=st.from_regex(r"[a-z][a-z_]{0,15}", fullmatch=True),
           body=json_bodies)
    @settings(max_examples=150, deadline=None)
    def test_request_frames_roundtrip(self, request_id, op, body):
        blob = encode_request_frame(request_id, op, body)
        assert frame_kind(blob) == "request"
        decoded_id, decoded_op, decoded_body = decode_request_frame(blob)
        assert decoded_id == request_id
        assert decoded_op == op
        assert decoded_body == body

    @given(request_id=request_ids, ok=st.booleans(), body=json_bodies,
           error=st.text(max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_reply_frames_roundtrip(self, request_id, ok, body, error):
        blob = encode_reply_frame(request_id, ok, body, error)
        assert frame_kind(blob) == "reply"
        decoded = decode_reply_frame(blob)
        assert decoded == (request_id, ok, body, error)

    @given(request_id=request_ids, op=st.just("query"), body=json_bodies)
    @settings(max_examples=50, deadline=None)
    def test_serve_frames_rejected_as_batch_traffic(self, request_id, op,
                                                    body):
        from repro.datalog.errors import NetworkError
        import pytest

        registry = RuleRegistry()
        for blob in (encode_request_frame(request_id, op, body),
                     encode_reply_frame(request_id, True, body)):
            with pytest.raises(NetworkError):
                decode_batch_message(blob, registry)

    @given(request_id=request_ids, ok=st.booleans(), body=json_bodies)
    @settings(max_examples=50, deadline=None)
    def test_frame_families_never_cross_decode(self, request_id, ok, body):
        from repro.datalog.errors import NetworkError
        import pytest

        reply = encode_reply_frame(request_id, ok, body)
        request = encode_request_frame(request_id, "ping", body)
        with pytest.raises(NetworkError):
            decode_request_frame(reply)
        with pytest.raises(NetworkError):
            decode_reply_frame(request)

    def test_batch_frames_classified(self):
        registry = RuleRegistry()
        items = [encode_batch_item("p", (1,), registry, to="x")]
        assert frame_kind(encode_batch_message(items, 3)) == "batch"
