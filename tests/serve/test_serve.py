"""The online authorization service, end to end over both transports.

The serving contract: every answer the server returns is bit-identical
to a batch fixpoint read of the same workspace, while updates stream in
between queries.  A reference ``LBTrustSystem`` applies the identical
update script directly; after every step the served answer must equal
the reference's filtered fixpoint read — over the in-process simulated
network and over real TCP sockets.
"""

import threading

import pytest

from repro.core.system import LBTrustSystem
from repro.datalog.errors import ServeError
from repro.net.network import SimulatedNetwork
from repro.net.socket_transport import SocketNetwork
from repro.serve import SERVE_OPS, ServeClient, ServeRouter, TrustServer

POLICY = """
object("f1"). object("f2").
access(P,O,"read") <- good(P), object(O).
"""


def build_system():
    system = LBTrustSystem(auth="plaintext", seed=7)
    system.create_principal("srv").load(POLICY)
    return system


class ServeHarness:
    """One server plus client factory, over either transport."""

    def __init__(self, transport):
        self.transport = transport
        self.system = build_system()
        self._client_nets = []
        if transport == "simulated":
            self.network = SimulatedNetwork()
            self.server = TrustServer(self.system, self.network)
            self.router = ServeRouter(self.network, self.server)
            self.thread = None
        else:
            self.network = SocketNetwork()
            self.server = TrustServer(self.system, self.network,
                                      poll_interval=0.01)
            self.router = None
            self.thread = threading.Thread(target=self.server.serve_forever,
                                           daemon=True)
            self.thread.start()

    def client(self, name):
        if self.transport == "simulated":
            client = ServeClient(self.network, name, router=self.router,
                                 timeout=10.0)
            client.connect()
            return client
        net = SocketNetwork()
        self._client_nets.append(net)
        client = ServeClient(net, name, timeout=10.0)
        client.connect(server_host="127.0.0.1",
                       server_port=self.network.port_of(self.server.node))
        return client

    def close(self, shutdown_via=None):
        if self.thread is not None:
            if shutdown_via is not None and not self.server.stopping:
                shutdown_via.shutdown()
            self.server.stop()
            self.thread.join(timeout=10.0)
        for net in self._client_nets:
            net.close()
        if self.transport == "socket":
            self.network.close()


@pytest.fixture(params=["simulated", "socket"])
def harness(request):
    h = ServeHarness(request.param)
    try:
        yield h
    finally:
        h.close()


def reference_read(principal, pred, pattern):
    return {fact for fact in principal.tuples(pred)
            if all(want is None or have == want
                   for have, want in zip(fact, pattern))}


class TestServedAnswersMatchBatch:
    def test_interleaved_updates_and_queries(self, harness):
        client = harness.client("c1")
        reference = build_system().principal("srv")
        subjects = ["alice", "bob", "carol", "dave"]
        for step, subject in enumerate(subjects):
            client.assert_fact("good", (subject,))
            reference.assert_fact("good", (subject,))
            for probe in subjects[:step + 1]:
                served = set(client.query(f'access("{probe}",O,"read")'))
                assert served == reference_read(
                    reference, "access", (probe, None, "read"))
            if step % 2 == 1:
                client.retract_fact("good", (subject,))
                reference.retract_fact("good", (subject,))
                served = set(client.query(f'access("{subject}",O,"read")'))
                assert served == reference_read(
                    reference, "access", (subject, None, "read"))

    def test_non_string_values_cross_the_wire(self, harness):
        client = harness.client("c1")
        client.load("big(N) <- num(N), N > 10.")
        client.assert_fact("num", (7,))
        client.assert_fact("num", (25,))
        assert set(client.query("big(N)")) == {(25,)}
        assert set(client.query("num(N)")) == {(7,), (25,)}

    def test_unbound_query_reads_full_relation(self, harness):
        client = harness.client("c1")
        client.assert_fact("good", ("alice",))
        served = set(client.query("access(P,O,M)"))
        assert served == {("alice", "f1", "read"), ("alice", "f2", "read")}


class TestMaintenanceCounters:
    def test_updates_are_incremental_queries_hit_cache(self, harness):
        client = harness.client("c1")
        client.assert_fact("good", ("alice",))
        client.query('access("alice",O,"read")')  # builds the program
        before = client.stats()
        for subject in ("bob", "carol"):
            client.assert_fact("good", (subject,))
            client.query(f'access("{subject}",O,"read")')
        client.retract_fact("good", ("bob",))
        client.query('access("bob",O,"read")')
        after = client.stats()
        assert after["full_recomputes"] == before["full_recomputes"]
        assert after["dred_strata"] > before["dred_strata"]
        assert after["magic_cache_hits"] >= before["magic_cache_hits"] + 3
        assert after["magic_programs_built"] == before["magic_programs_built"]


class TestProtocol:
    def test_hello_lists_principals(self, harness):
        client = harness.client("c1")
        body = client.call("hello", {"client": "c1"})
        assert body == {"node": "server", "principals": ["srv"]}

    def test_ping_returns_a_clock(self, harness):
        client = harness.client("c1")
        assert isinstance(client.ping(), float)

    def test_error_reply_keeps_the_server_alive(self, harness):
        client = harness.client("c1")
        with pytest.raises(ServeError, match="unknown principal"):
            client.query("p(X)", principal="nobody")
        with pytest.raises(ServeError):
            client.call("frobnicate")
        with pytest.raises(ServeError):  # retracting a never-asserted fact
            client.retract_fact("good", ("ghost",))
        client.assert_fact("good", ("alice",))  # still serving
        assert len(client.query('access("alice",O,"read")')) == 2

    def test_request_ids_match_in_order(self, harness):
        client = harness.client("c1")
        for _ in range(5):
            client.ping()
        assert client.requests_sent >= 5

    def test_sync_runs_the_exchange(self, harness):
        client = harness.client("c1")
        body = client.sync(max_rounds=5)
        assert set(body) == {"rounds", "delivered", "rejected"}

    def test_shutdown_is_clean(self, harness):
        client = harness.client("c1")
        client.shutdown()
        assert harness.server.stopping
        harness.close()
        if harness.thread is not None:
            assert not harness.thread.is_alive()

    def test_ops_catalog_is_complete(self):
        assert set(SERVE_OPS) == {"hello", "ping", "assert", "retract",
                                  "load", "query", "sync", "stats",
                                  "shutdown"}


class TestRouter:
    def test_multiple_clients_share_one_queue(self):
        harness = ServeHarness("simulated")
        try:
            first = harness.client("c1")
            second = harness.client("c2")
            first.assert_fact("good", ("alice",))
            # interleave: both clients issue queries; the router must park
            # each reply in the right inbox even when deliveries for the
            # other client come off the shared queue first
            assert len(first.query('access("alice",O,"read")')) == 2
            assert len(second.query('access("alice",O,"read")')) == 2
            assert second.query('access("nobody",O,"read")') == []
        finally:
            harness.close()

    def test_unknown_destination_is_loud(self):
        harness = ServeHarness("simulated")
        try:
            client = harness.client("c1")
            harness.network.add_node("stranger")
            harness.network.send("server", "stranger", b"{}")
            with pytest.raises(ServeError, match="unknown client"):
                client.ping()
        finally:
            harness.close()
