"""The serve-plane ``load`` op reports static-check warnings."""

import pytest

from repro.core.system import LBTrustSystem
from repro.datalog.errors import ReproError
from repro.net.network import SimulatedNetwork
from repro.net.transport import decode_reply_frame, encode_request_frame
from repro.serve import TrustServer


@pytest.fixture
def server():
    system = LBTrustSystem(auth="plaintext", seed=7)
    system.create_principal("srv")
    network = SimulatedNetwork()
    network.add_node("cli")
    return TrustServer(system, network)


def test_load_reply_carries_warning_diagnostics(server):
    reply = server._dispatch("cli", "load", {
        "principal": "srv",
        "source": "r(X) <- s(X), !t(X,Y).\ns(1). t(1,2).",
    })
    [warning] = reply["warnings"]
    assert warning["code"] == "R002"
    assert warning["severity"] == "warning"
    assert warning["line"] == 1


def test_clean_load_reports_no_warnings(server):
    reply = server._dispatch("cli", "load", {
        "principal": "srv",
        "source": "object(\"f1\").\naccess(P) <- good(P).",
    })
    assert reply == {"warnings": [], "suppressed": []}


def test_rejected_load_travels_as_error_reply(server):
    with pytest.raises(ReproError, match=r"\[R001\]"):
        server._dispatch("cli", "load", {
            "principal": "srv", "source": "p(X,Y) <- q(X)."})
    # over the wire the same failure becomes an ok=False reply
    frame = encode_request_frame(1, "load", {
        "principal": "srv", "source": "p(X,Y) <- q(X)."})
    server.handle("cli", frame)
    _, _, blob = server.network.deliver_next()
    request_id, ok, _, error = decode_reply_frame(blob)
    assert request_id == 1 and not ok
    assert "[R001]" in error


def test_load_reply_reports_suppressed_findings(server):
    reply = server._dispatch("cli", "load", {
        "principal": "srv",
        "source": "r(X) <- s(X), !t(X,Y). %# check: ignore[R002]\n"
                  "s(1). t(1,2).",
    })
    assert reply["warnings"] == []
    [hidden] = reply["suppressed"]
    assert hidden["code"] == "R002"
