"""``repro serve`` CLI: scripted sessions, self-checks, exit codes."""

import io

from repro.cli import main as repro_main
from repro.serve.cli import build_parser, main as serve_main, run_session


class TestServeCommand:
    def run(self, *argv):
        out = io.StringIO()
        status = serve_main(list(argv), out=out)
        return status, out.getvalue()

    def test_simulated_session_passes(self):
        status, text = self.run("--steps", "4")
        assert status == 0
        assert "session checks: OK" in text
        assert "transport=simulated" in text
        assert "p50=" in text and "p99=" in text
        assert "full_recomputes=+0" in text

    def test_socket_session_passes(self):
        status, text = self.run("--transport", "socket", "--steps", "4",
                                "--clients", "1")
        assert status == 0
        assert "session checks: OK" in text
        assert "transport=socket" in text

    def test_procs_requires_socket(self):
        status, text = self.run("--procs", "2")
        assert status == 2
        assert "--procs requires --transport socket" in text

    def test_bad_counts_rejected(self):
        status, _ = self.run("--steps", "0")
        assert status == 2

    def test_routed_from_top_level_cli(self, capsys):
        assert repro_main(["serve", "--steps", "2", "--clients", "1"]) == 0
        assert "session checks: OK" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.transport == "simulated"
        assert args.procs == 0
        assert args.auth == "plaintext"


class TestRunSession:
    def test_session_reports_a_mismatch(self):
        class LyingClient:
            def assert_fact(self, pred, fact):
                pass

            def retract_fact(self, pred, fact):
                pass

            def query(self, source):
                return []  # never the expected answers

        result = run_session(LyingClient(), 0, steps=2)
        assert not result["ok"]
        assert result["failures"]
        # 2 asserts + 2 queries + the final step's retract + re-query
        assert result["updates"] == 3 and result["queries"] == 3
        assert len(result["latencies"]) == 6
