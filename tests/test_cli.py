"""The interactive shell, driven end-to-end through its dispatch loop."""

import io
import subprocess
import sys

import pytest

from repro.cli import Shell


def run_script(script: str, auth: str = "plaintext") -> str:
    out = io.StringIO()
    shell = Shell(auth=auth, rsa_bits=256, out=out)
    shell.run(io.StringIO(script))
    return out.getvalue()


class TestShell:
    def test_full_session(self):
        output = run_script("""
            :principal alice
            :principal bob
            :as bob
            object("f1"). access(P,O,"read") <- good(P), object(O).
            :as alice
            :says bob good("carol").
            :run
            :as bob
            :query access(P,O,M)
        """)
        assert "created alice" in output
        assert "delivered=1" in output
        assert "'carol'" in output and "'f1'" in output

    def test_tuples_and_rules(self):
        output = run_script("""
            :principal w
            base("x").
            d(X) <- base(X).
            :tuples d
            :rules
        """)
        assert "('x',)" in output
        assert "d(V0) <- base(V0)." in output

    def test_error_handling_keeps_session_alive(self):
        output = run_script("""
            :query oops(X)
            :principal w
            this is not datalog
            :tuples nothing
        """)
        assert "error: no current principal" in output
        assert "error:" in output  # the parse error too

    def test_reconfigure(self):
        output = run_script("""
            :principal a
            :principal b
            :as a
            :says b note("1").
            :run
            :reconfigure hmac
            :says b note("2").
            :run
            :as b
            :tuples note
        """)
        assert "auth scheme is now hmac" in output
        assert "('1',)" in output and "('2',)" in output

    def test_audit_of_rejection(self):
        output = run_script("""
            :principal a
            :principal b
            :as b
            :audit
        """, auth="hmac")
        # no rejections yet: audit section prints nothing but must not crash
        assert "error" not in output.lower()

    def test_quit_stops(self):
        output = run_script(":principal w\n:quit\n:principal never\n")
        assert "created w" in output
        assert "never" not in output

    def test_help(self):
        assert ":says" in run_script(":help")


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--auth", "plaintext"],
        input=":principal solo\nfact(\"1\").\n:tuples fact\n:quit\n",
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "('1',)" in result.stdout


def test_workspace_typecheck_api():
    from repro.workspace.workspace import Workspace

    workspace = Workspace("w")
    workspace.load("""
        good(P) -> principal(P).
        size(O,N) -> object(O), int(N).
        bad: oops(X) <- good(X), size(X,N).
    """)
    issues = workspace.typecheck()
    assert any(issue.variable == "X" for issue in issues)


class TestClusterSubcommand:
    def run_demo(self, *argv):
        import io

        from repro.cluster.demo import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_demo_runs_and_reports(self):
        code, output = self.run_demo("--nodes", "3", "--vertices", "20")
        assert code == 0
        assert "3 node(s)" in output
        assert "fixpoint:" in output
        assert "batch message(s)" in output
        # per-node rows for every node
        for name in ("node0", "node1", "node2"):
            assert name in output

    def test_single_node_demo_has_no_traffic(self):
        code, output = self.run_demo("--nodes", "1", "--vertices", "12")
        assert code == 0
        assert "0 batch message(s)" in output

    def test_bad_arguments_rejected(self):
        code, _output = self.run_demo("--nodes", "0")
        assert code == 2

    def test_socket_transport_in_process(self):
        code, output = self.run_demo("--transport", "socket",
                                     "--nodes", "3", "--vertices", "20")
        assert code == 0
        assert "socket transport" in output
        assert "fixpoint:" in output
        assert "wall time" in output

    def test_socket_transport_multiprocess(self):
        code, output = self.run_demo("--transport", "socket",
                                     "--procs", "3", "--vertices", "20")
        assert code == 0
        assert "3 worker process(es)" in output
        assert "across 3 OS processes" in output
        assert "fixpoint:" in output

    def test_socket_and_simulated_fixpoints_agree(self):
        _, simulated = self.run_demo("--nodes", "3", "--vertices", "20")
        _, in_proc = self.run_demo("--transport", "socket",
                                   "--nodes", "3", "--vertices", "20")
        _, multi = self.run_demo("--transport", "socket",
                                 "--procs", "3", "--vertices", "20")
        def fixpoint(output):
            for line in output.splitlines():
                if line.startswith("fixpoint:"):
                    return line.split()[1]
            raise AssertionError(f"no fixpoint line in {output!r}")
        assert fixpoint(simulated) == fixpoint(in_proc) == fixpoint(multi)

    def test_procs_requires_socket_transport(self):
        code, output = self.run_demo("--procs", "3")
        assert code == 2
        assert "--transport socket" in output

    def test_dispatch_from_main(self):
        # `repro cluster ...` routes through the top-level entry point
        import subprocess
        import sys as _sys

        result = subprocess.run(
            [_sys.executable, "-m", "repro", "cluster", "--nodes", "2",
             "--vertices", "12"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "fixpoint:" in result.stdout
