"""Every example script must run clean — they are the documented API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "binder_filesystem", "sendlog_routing",
            "delegation_network"} <= names
