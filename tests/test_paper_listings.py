"""Every rule listing in the paper, as executable text.

These tests pin the reproduction to the paper: each listing must parse,
compile (me-resolution, quote compilation, builtin resolution), and pass
safety checks in a workspace context.  Where the printed listing has a
known defect, the corrected form is used and the deviation is asserted
against DESIGN.md's documented list.
"""

import pytest

from repro.datalog.builtins import standard_registry
from repro.datalog.parser import parse_statements
from repro.datalog.terms import Constraint, Rule
from repro.crypto.datalog_builtins import register_crypto_builtins
from repro.meta.quote import compile_constraint, compile_rule

#: The listing corpus lives with the analyzer so `repro check
#: --paper-listings` and these tests pin the exact same text.
from repro.analysis.corpus import LISTINGS


def builtins():
    registry = standard_registry()
    register_crypto_builtins(registry)
    return registry


@pytest.mark.parametrize("name", sorted(LISTINGS))
def test_listing_parses_and_compiles(name):
    source = LISTINGS[name]
    statements = parse_statements(source)
    assert statements, name
    registry = builtins()
    for statement in statements:
        if isinstance(statement, Rule):
            compiled = compile_rule(statement, "alice", registry)
            assert compiled.heads
        elif isinstance(statement, Constraint):
            compiled = compile_constraint(statement, "alice", registry)
            assert compiled.lhs
        else:  # pragma: no cover
            pytest.fail(f"unexpected statement in {name}")


def test_listing_count_covers_the_paper():
    # every named listing family of the paper is pinned here
    families = {name.split(" ")[0].rstrip(":") for name in LISTINGS}
    assert {"b1", "b2", "says0", "says1", "exp0", "exp1", "exp2", "exp3",
            "exp1'", "exp3'", "sf0", "del0", "del1", "dd0", "dd1", "dd2",
            "dd3", "dd4", "wd0", "wd1", "wd2", "pull0", "ls1", "ls2",
            "ld1", "ld2", "lc1", "lc2", "f2", "f6", "m2", "dfs1"} <= families


def test_meta_model_declarations_load():
    """Figure 1, loadable as a program."""
    from repro.meta.model import META_MODEL_DECLARATIONS
    statements = parse_statements(META_MODEL_DECLARATIONS)
    assert len(statements) == 17
    assert all(isinstance(s, Constraint) for s in statements)
