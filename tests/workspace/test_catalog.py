"""Catalog: declarations, arity discipline, type harvesting."""

import pytest

from repro.datalog.errors import WorkspaceError
from repro.datalog.parser import parse_atom, parse_statements
from repro.workspace.catalog import Catalog, harvest_catalog


class TestObservation:
    def test_auto_declare_on_first_use(self):
        catalog = Catalog()
        info = catalog.observe_atom(parse_atom("p(X,Y)"))
        assert info.arity == 2 and not info.declared

    def test_arity_clash(self):
        catalog = Catalog()
        catalog.observe_atom(parse_atom("p(X,Y)"))
        with pytest.raises(WorkspaceError):
            catalog.observe_atom(parse_atom("p(X)"))

    def test_partition_key_recorded(self):
        catalog = Catalog()
        info = catalog.observe_atom(parse_atom("export[U](V,R,S)"))
        assert info.key_arity == 1 and info.arity == 4

    def test_partition_key_clash(self):
        catalog = Catalog()
        catalog.observe_atom(parse_atom("export[U](V,R,S)"))
        with pytest.raises(WorkspaceError):
            catalog.observe_atom(parse_atom("export[U,V](R,S)"))

    def test_fact_arity_check(self):
        catalog = Catalog()
        catalog.observe_atom(parse_atom("p(X,Y)"))
        catalog.check_fact_arity("p", ("a", "b"))
        with pytest.raises(WorkspaceError):
            catalog.check_fact_arity("p", ("a",))
        catalog.check_fact_arity("unknown", ("anything",))  # undeclared: ok

    def test_declare_tuple_pred(self):
        catalog = Catalog()
        catalog.declare_tuple_pred("export", 4, 1)
        with pytest.raises(WorkspaceError):
            catalog.declare_tuple_pred("export", 3, 1)


class TestTypeHarvesting:
    def test_type_declaration_harvested(self):
        statements = parse_statements(
            "access(P,O,M) -> principal(P), object(O), mode(M).")
        catalog = harvest_catalog(statements)
        info = catalog.info("access")
        assert info.declared
        assert info.arg_types == ["principal", "object", "mode"]

    def test_partial_types(self):
        statements = parse_statements("p(X,Y) -> t(X).")
        catalog = harvest_catalog(statements)
        assert catalog.info("p").arg_types == ["t", None]

    def test_non_declaration_shapes_ignored(self):
        # constraint with a constant argument is not a type declaration
        statements = parse_statements('p(X,"k") -> t(X).')
        catalog = harvest_catalog(statements)
        assert catalog.info("p").arg_types == [None, None]

    def test_repeated_variable_not_a_declaration(self):
        statements = parse_statements("p(X,X) -> t(X).")
        catalog = harvest_catalog(statements)
        assert catalog.info("p").arg_types == [None, None]

    def test_rules_observed_too(self):
        statements = parse_statements("p(X) <- q(X,Y), r(Y).")
        catalog = harvest_catalog(statements)
        assert catalog.info("q").arity == 2
        assert catalog.info("r").arity == 1
