"""The static-check gate on ``Workspace.load``.

The gate's contract: error diagnostics reject a load by raising the same
exception type the engine would raise (never a new analysis-specific
type), the rejection happens *before* anything is installed, and warning
diagnostics survive in ``last_check`` plus the audit log.
"""

import pytest

from repro.datalog.errors import (
    SafetyError,
    StratificationError,
    WorkspaceError,
)
from repro.workspace.workspace import Workspace


class TestRejectPaths:
    def test_unsafe_rule_raises_safety_error(self):
        workspace = Workspace("w")
        with pytest.raises(SafetyError, match="static check rejected"):
            workspace.load("p(X,Y) <- q(X).")
        # nothing was installed: the reject happened before the transaction
        assert not workspace.active_refs()
        assert workspace.tuples("p") == set()

    def test_unstratifiable_raises_stratification_error(self):
        workspace = Workspace("w")
        with pytest.raises(StratificationError, match=r"\[R101\]"):
            workspace.load("p(X) <- q(X), !r(X).\nr(X) <- p(X).\nq(1).")
        assert not workspace.active_refs()

    def test_arity_clash_raises_workspace_error(self):
        workspace = Workspace("w")
        with pytest.raises(WorkspaceError, match=r"\[R201\]"):
            workspace.load("f(1).\nf(1,2).")
        assert workspace.tuples("f") == set()

    def test_all_errors_reported_at_once(self):
        workspace = Workspace("w")
        with pytest.raises(SafetyError) as exc:
            workspace.load("p(X,Y) <- q(X).\nf(1).\nf(1,2).")
        message = str(exc.value)
        assert "[R001]" in message and "[R201]" in message

    def test_rejected_load_keeps_prior_state(self):
        workspace = Workspace("w")
        workspace.load("good(1).")
        with pytest.raises(SafetyError):
            workspace.load("good(2).\np(X,Y) <- q(X).")
        assert workspace.tuples("good") == {(1,)}


class TestWarnPath:
    WARN_PROGRAM = "r(X) <- s(X), !t(X,Y).\ns(1). t(1,2)."

    def test_warning_program_still_loads(self):
        workspace = Workspace("w")
        workspace.load(self.WARN_PROGRAM)
        assert workspace.tuples("r") == set()  # t(1,2) blocks nothing: !t(1,Y)
        assert workspace.tuples("s") == {(1,)}

    def test_warnings_land_in_last_check_and_audit(self):
        workspace = Workspace("w")
        workspace.load(self.WARN_PROGRAM)
        codes = [d.code for d in workspace.last_check]
        assert "R002" in codes
        events = [e for e in workspace.audit
                  if e.kind == "static_check_warnings"]
        assert len(events) == 1
        assert any("[R002]" in w for w in events[0].detail["warnings"])

    def test_clean_load_resets_last_check_and_skips_audit(self):
        workspace = Workspace("w")
        workspace.load(self.WARN_PROGRAM)
        assert workspace.last_check
        workspace.load("clean(1).")
        assert workspace.last_check == []
        events = [e for e in workspace.audit
                  if e.kind == "static_check_warnings"]
        assert len(events) == 1  # only the warning load was logged


class TestGateEngineAgreement:
    """The gate must never reject a program the engine accepts."""

    ACCEPTED = [
        "p(X) <- q(X), X > 1.\nq(1). q(2).",
        "p(X) <- q(X), !r(X).\nr(1). q(1).",          # stratified negation
        "t(X,N) <- agg<<N = count(Y)>> e(X,Y).\ne(1,2).",
        'says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).',
    ]

    @pytest.mark.parametrize("source", ACCEPTED)
    def test_engine_accepted_programs_still_load(self, source):
        workspace = Workspace("w")
        workspace.load(source)
