"""Partitioning by currying (section 3.4)."""

import pytest

from repro.datalog.errors import WorkspaceError
from repro.workspace.partition import (
    currying_rule,
    install_partition,
    partition_contents,
    partition_keys,
)
from repro.workspace.workspace import Workspace


class TestCurryingRule:
    def test_paper_shape(self):
        assert currying_rule("p", 3) == "p'[X1](X2,X3) <- p(X1,X2,X3)."

    def test_two_key_columns(self):
        assert currying_rule("p", 4, key_arity=2) == \
            "p'[X1,X2](X3,X4) <- p(X1,X2,X3,X4)."

    def test_bad_key_arity(self):
        with pytest.raises(WorkspaceError):
            currying_rule("p", 2, key_arity=2)
        with pytest.raises(WorkspaceError):
            currying_rule("p", 2, key_arity=0)


class TestInstallPartition:
    def setup_method(self):
        self.workspace = Workspace("w")
        self.workspace.assert_facts("p", [
            ("alice", "f1", "read"),
            ("alice", "f2", "write"),
            ("bob", "f1", "read"),
        ])

    def test_partitions_populated(self):
        curried = install_partition(self.workspace, "p", 3)
        assert curried == "p'"
        assert partition_keys(self.workspace, "p'") == {("alice",), ("bob",)}
        assert partition_contents(self.workspace, "p'", ("alice",)) == {
            ("f1", "read"), ("f2", "write")}

    def test_same_data_different_grouping(self):
        # partitioning "does not change the set of data" (section 3.4)
        install_partition(self.workspace, "p", 3)
        flattened = {
            key + value
            for key in partition_keys(self.workspace, "p'")
            for value in partition_contents(self.workspace, "p'", key)
        }
        assert flattened == self.workspace.tuples("p")

    def test_incremental_maintenance(self):
        install_partition(self.workspace, "p", 3)
        self.workspace.assert_fact("p", ("carol", "f3", "read"))
        assert ("carol",) in partition_keys(self.workspace, "p'")

    def test_wrong_key_width_rejected(self):
        install_partition(self.workspace, "p", 3)
        with pytest.raises(WorkspaceError):
            partition_contents(self.workspace, "p'", ("alice", "extra"))

    def test_unknown_partition_rejected(self):
        with pytest.raises(WorkspaceError):
            partition_keys(self.workspace, "nope'")
