"""Point queries: magic-served answers must equal fixpoint reads.

``Workspace.point_query`` is the serving plane's read path.  Its contract
is bit-identical answers to reading the incrementally maintained database
(which is always at fixpoint) — whether it answered through the cached
magic-sets rewrite or fell back to a direct read.
"""

import pytest

from repro.datalog.errors import WorkspaceError
from repro.workspace.workspace import Workspace

POLICY = """
object("f1"). object("f2").
access(P,O,"read") <- good(P), object(O).
reach(X,Y) <- edge(X,Y).
reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def fixpoint_read(workspace, pred, pattern):
    """Reference answer: filter the full relation by the bound pattern."""
    return {fact for fact in workspace.tuples(pred)
            if all(want is None or have == want
                   for have, want in zip(fact, pattern))}


def build():
    workspace = Workspace("srv")
    workspace.load(POLICY)
    workspace.assert_fact("good", ("alice",))
    workspace.assert_fact("good", ("bob",))
    for edge in [(1, 2), (2, 3), (3, 4), (2, 5)]:
        workspace.assert_fact("edge", edge)
    return workspace


class TestAnswersMatchFixpoint:
    def test_bound_derived_query(self):
        workspace = build()
        assert workspace.point_query('access("alice",O,"read")') == \
            fixpoint_read(workspace, "access", ("alice", None, "read"))

    def test_recursive_query(self):
        workspace = build()
        assert workspace.point_query("reach(1,Y)") == \
            fixpoint_read(workspace, "reach", (1, None))

    def test_unbound_query_reads_directly(self):
        workspace = build()
        assert workspace.point_query("access(P,O,M)") == \
            workspace.tuples("access")

    def test_edb_only_predicate(self):
        workspace = build()
        assert workspace.point_query('object("f1")') == {("f1",)}
        assert workspace.point_query('object("nope")') == set()

    def test_unknown_predicate_is_empty(self):
        workspace = build()
        assert workspace.point_query("nothing(X)") == set()

    def test_atom_string_with_trailing_dot(self):
        workspace = build()
        assert workspace.point_query('access("bob",O,"read").') == \
            fixpoint_read(workspace, "access", ("bob", None, "read"))

    def test_non_atom_source_rejected(self):
        workspace = build()
        with pytest.raises(WorkspaceError):
            workspace.point_query("a(X) <- b(X)")

    def test_me_resolves_to_the_owner(self):
        workspace = Workspace("alice")
        workspace.load("mine(X) <- owns(me,X).")
        workspace.assert_fact("owns", ("alice", "f1"))
        assert workspace.point_query("mine(X)") == {("f1",)}

    def test_mixed_edb_and_derived_head(self):
        # a head predicate can also hold directly asserted facts; the
        # adorned program alone would miss them
        workspace = build()
        workspace.assert_fact("access", ("eve", "f9", "read"))
        assert workspace.point_query('access("eve",O,"read")') == \
            {("eve", "f9", "read")}
        assert workspace.point_query('access("alice",O,"read")') == \
            fixpoint_read(workspace, "access", ("alice", None, "read"))

    def test_negation_falls_back_to_direct_read(self):
        workspace = Workspace("w")
        workspace.load("""
            person("a"). person("b"). banned("b").
            allowed(X) <- person(X), !banned(X).
        """)
        assert workspace.point_query('allowed("a")') == {("a",)}
        assert workspace.point_query('allowed("b")') == set()

    def test_tracks_incremental_updates(self):
        workspace = build()
        query = 'access("alice",O,"read")'
        assert len(workspace.point_query(query)) == 2
        workspace.assert_fact("object", ("f3",))
        assert workspace.point_query(query) == \
            fixpoint_read(workspace, "access", ("alice", None, "read"))
        workspace.retract_facts("good", [("alice",)])
        assert workspace.point_query(query) == set()


class TestServingCounters:
    def test_repeated_shapes_hit_the_magic_cache(self):
        workspace = build()
        workspace.point_query('access("alice",O,"read")')  # builds
        before = workspace.stats.copy()
        for name in ("alice", "bob", "alice"):
            workspace.point_query(f'access("{name}",O,"read")')
        delta = workspace.stats.diff(before)
        assert delta.magic_programs_built == 0
        assert delta.magic_cache_hits == 3

    def test_retraction_uses_dred_not_full_recompute(self):
        workspace = build()
        before = workspace.stats.copy()
        workspace.retract_facts("good", [("alice",)])
        delta = workspace.stats.diff(before)
        assert delta.dred_strata > 0
        assert delta.full_recomputes == 0

    def test_nonmonotone_stratum_recompute_counted(self):
        workspace = Workspace("w")
        workspace.load("""
            person("a"). person("b"). banned("b").
            allowed(X) <- person(X), !banned(X).
        """)
        before = workspace.stats.copy()
        workspace.retract_facts("banned", [("b",)])
        delta = workspace.stats.diff(before)
        assert delta.strata_recomputed > 0
        assert delta.full_recomputes == 0
        assert workspace.tuples("allowed") == {("a",), ("b",)}
