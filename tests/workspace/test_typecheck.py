"""Static type checking from declarations."""

from repro.datalog.parser import parse_statements
from repro.datalog.terms import Rule
from repro.workspace.catalog import harvest_catalog
from repro.workspace.typecheck import typecheck_program, typecheck_rule

DECLS = """
access(P,O,M) -> principal(P), object(O), mode(M).
good(P) -> principal(P).
size(O,N) -> object(O), int(N).
"""


def check(rule_source):
    statements = parse_statements(DECLS + rule_source)
    catalog = harvest_catalog(statements)
    rules = [s for s in statements if isinstance(s, Rule)]
    return typecheck_program(rules, catalog)


class TestClean:
    def test_well_typed_rule(self):
        assert check("access(P,O,M) <- good(P), size(O,N), mode(M).") == []

    def test_undeclared_predicates_unconstrained(self):
        assert check("x(A) <- y(A), z(A).") == []

    def test_repeated_consistent_use(self):
        assert check("twice(P) <- good(P), access(P,O,M).") == []


class TestClashes:
    def test_principal_vs_object(self):
        issues = check("oops(X) <- good(X), size(X,N).")
        assert len(issues) == 1
        assert issues[0].variable == "X"
        assert set(issues[0].types) == {"principal", "object"}

    def test_int_vs_principal(self):
        issues = check("oops(X) <- good(X), size(O,X).")
        assert issues and set(issues[0].types) == {"int", "principal"}

    def test_int_compatible_with_number(self):
        extra = "wt(O,N) -> object(O), number(N).\n"
        statements = parse_statements(DECLS + extra +
                                      "both(N) <- size(O,N), wt(O,N).")
        catalog = harvest_catalog(statements)
        rules = [s for s in statements if isinstance(s, Rule)]
        assert typecheck_program(rules, catalog) == []

    def test_issue_reports_rule_label(self):
        issues = check("lbl: oops(X) <- good(X), size(X,N).")
        assert issues[0].rule_label == "lbl"
        assert "lbl" in str(issues[0])
