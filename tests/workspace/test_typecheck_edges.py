"""Nominal-vs-primitive edge cases of the static type checker.

These pin the pre-existing ``TypeIssue`` behaviour that ISSUE 7 absorbed
into the analyzer (`repro.analysis.passes.infer_type_clashes`): the
wrapper must keep reporting exactly what it reported before.
"""

from repro.datalog.parser import parse_statements
from repro.datalog.terms import Rule
from repro.workspace.catalog import harvest_catalog
from repro.workspace.typecheck import TypeIssue, typecheck_program


def issues(source):
    statements = parse_statements(source)
    catalog = harvest_catalog(statements)
    rules = [s for s in statements if isinstance(s, Rule)]
    return typecheck_program(rules, catalog)


def test_same_user_type_twice_is_fine():
    found = issues(
        "knows(A,B) -> principal(A), principal(B).\n"
        "peer(A,B) <- knows(A,B), knows(B,A).")
    assert found == []


def test_primitive_vs_user_type_clashes():
    found = issues(
        "age(P,N) -> principal(P), int(N).\n"
        "label(P) -> string(P).\n"
        "odd(P) <- age(P,_), label(P).")
    assert [(i.variable, i.types) for i in found] == [
        ("P", ("principal", "string"))]
    assert "rule" in str(found[0]) and "principal, string" in str(found[0])


def test_two_user_types_are_nominal():
    found = issues(
        "cat(C) -> feline(C).\n"
        "dog(D) -> canine(D).\n"
        "both(X) <- cat(X), dog(X).")
    assert [(i.variable, i.types) for i in found] == [
        ("X", ("canine", "feline"))]


def test_variable_in_three_positions_reports_once():
    found = issues(
        "a(X) -> int(X).\n"
        "b(X) -> string(X).\n"
        "c(X) -> principal(X).\n"
        "r(V) <- a(V), b(V), c(V).")
    assert len(found) == 1
    issue = found[0]
    assert issue.variable == "V"
    assert issue.types == ("int", "principal", "string")


def test_unlabeled_rule_gets_placeholder_label():
    found = issues(
        "a(X) -> int(X).\n"
        "b(X) -> string(X).\n"
        "r(V) <- a(V), b(V).")
    assert found[0].rule_label == "<unlabeled>"
    labeled = issues(
        "a(X) -> int(X).\n"
        "b(X) -> string(X).\n"
        "t9: r(V) <- a(V), b(V).")
    assert labeled[0].rule_label == "t9"


def test_type_issue_is_hashable_and_stable():
    issue = TypeIssue("t1", "X", ("int", "string"))
    assert issue == TypeIssue("t1", "X", ("int", "string"))
    assert {issue}  # frozen dataclass stays hashable
