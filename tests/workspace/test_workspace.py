"""Workspace behaviour: loading, queries, transactions, activation loop."""

import pytest

from repro.datalog.errors import (
    ActivationLimitError,
    ConstraintViolation,
    WorkspaceError,
)
from repro.datalog.parser import parse_rule
from repro.workspace.workspace import Workspace


class TestLoading:
    def test_facts_rules_constraints(self):
        workspace = Workspace("w")
        workspace.load("""
            base("a"). base("b").
            derived(X) <- base(X).
            derived(X) -> base(X).
        """)
        assert workspace.tuples("derived") == {("a",), ("b",)}

    def test_incremental_fact_assertion(self):
        workspace = Workspace("w")
        workspace.load("d(X) <- b(X).")
        workspace.assert_fact("b", ("a",))
        assert workspace.tuples("d") == {("a",)}
        workspace.assert_fact("b", ("c",))
        assert workspace.tuples("d") == {("a",), ("c",)}

    def test_rule_added_after_facts(self):
        workspace = Workspace("w")
        workspace.assert_fact("b", ("a",))
        workspace.add_rule("d(X) <- b(X).")
        assert workspace.tuples("d") == {("a",)}

    def test_me_resolution(self):
        workspace = Workspace("alice")
        workspace.load('owner(me). mine(X) <- owned(me,X).')
        assert workspace.tuples("owner") == {("alice",)}
        workspace.assert_fact("owned", ("alice", "f"))
        assert workspace.tuples("mine") == {("f",)}

    def test_arity_clash_rejected(self):
        workspace = Workspace("w")
        workspace.load("p(X,Y) <- q(X,Y).")
        with pytest.raises(WorkspaceError):
            workspace.assert_fact("p", ("only-one",))

    def test_fact_with_quote_becomes_ruleref(self):
        from repro.datalog.terms import RuleRef
        workspace = Workspace("w")
        workspace.load('want([| data("x"). |]).')
        ((ref,),) = workspace.tuples("want")
        assert isinstance(ref, RuleRef)
        assert workspace.rule_text(ref) == 'data("x").'


class TestQueries:
    def setup_method(self):
        self.workspace = Workspace("w")
        self.workspace.load("""
            e("a","b"). e("b","c").
            r(X,Y) <- e(X,Y).
            r(X,Z) <- r(X,Y), e(Y,Z).
        """)

    def test_query_bindings(self):
        rows = self.workspace.query('r("a",X)')
        assert {row["X"] for row in rows} == {"b", "c"}

    def test_query_with_negation(self):
        rows = self.workspace.query('e(X,_), !r(X,"b")')
        assert {row["X"] for row in rows} == {"b"}

    def test_query_with_comparison(self):
        rows = self.workspace.query('e(X,Y), X < "b"')
        assert {row["X"] for row in rows} == {"a"}

    def test_holds(self):
        assert self.workspace.holds('r("a","c")')
        assert not self.workspace.holds('r("c","a")')

    def test_query_deduplicates(self):
        rows = self.workspace.query("e(X,_)")
        assert len(rows) == len({tuple(sorted(r.items())) for r in rows})


class TestTransactions:
    def test_violation_rolls_back_facts(self):
        workspace = Workspace("w")
        workspace.add_constraint("p(X) -> q(X).")
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("p", ("a",))
        assert workspace.tuples("p") == set()

    def test_violation_rolls_back_derivations(self):
        workspace = Workspace("w")
        workspace.load("d(X) <- b(X). d(X) -> allowed(X).")
        workspace.assert_fact("allowed", ("ok",))
        workspace.assert_fact("b", ("ok",))
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("b", ("bad",))
        assert workspace.tuples("d") == {("ok",)}
        assert workspace.tuples("b") == {("ok",)}

    def test_batch_transaction_atomic(self):
        workspace = Workspace("w")
        workspace.add_constraint("p(X) -> q(X).")
        with pytest.raises(ConstraintViolation):
            with workspace.transaction():
                workspace.assert_fact("q", ("a",))
                workspace.assert_fact("p", ("a",))
                workspace.assert_fact("p", ("orphan",))
        # everything in the failed transaction is gone, even the valid part
        assert workspace.tuples("q") == set()

    def test_audit_survives_rollback(self):
        workspace = Workspace("w")
        workspace.add_constraint("p(X) -> q(X).")
        with pytest.raises(ConstraintViolation):
            workspace.assert_fact("p", ("a",))
        assert any(e.kind == "constraint_violation" for e in workspace.audit)

    def test_rule_rollback(self):
        workspace = Workspace("w")
        workspace.assert_fact("secretish", ("s",))
        workspace.add_constraint(
            'rule(R), body(R,A), functor(A,"secretish") -> never().')
        with pytest.raises(ConstraintViolation):
            workspace.add_rule("leak(X) <- secretish(X).")
        assert workspace.tuples("leak") == set()
        assert not workspace.holds('active(R), rule(R), body(R,A), functor(A,"secretish")')

    def test_nested_transactions_flatten(self):
        workspace = Workspace("w")
        with workspace.transaction():
            workspace.assert_fact("a", (1,))
            with workspace.transaction():
                workspace.assert_fact("b", (2,))
        assert workspace.tuples("a") == {(1,)}
        assert workspace.tuples("b") == {(2,)}


class TestRetraction:
    def test_retract_propagates(self):
        workspace = Workspace("w")
        workspace.load('e("a","b"). e("b","c"). r(X,Y) <- e(X,Y). '
                       "r(X,Z) <- r(X,Y), e(Y,Z).")
        workspace.retract_fact("e", ("b", "c"))
        assert workspace.tuples("r") == {("a", "b")}

    def test_retract_unknown_fact_rejected(self):
        workspace = Workspace("w")
        with pytest.raises(WorkspaceError):
            workspace.retract_fact("e", ("nope", "nope"))

    def test_retract_derived_fact_rejected(self):
        workspace = Workspace("w")
        workspace.load('e("a","b"). r(X,Y) <- e(X,Y).')
        with pytest.raises(WorkspaceError):
            workspace.retract_fact("r", ("a", "b"))

    def test_deactivate_rule(self):
        workspace = Workspace("w")
        workspace.assert_fact("b", ("x",))
        ref = workspace.add_rule("d(X) <- b(X).")
        assert workspace.tuples("d") == {("x",)}
        workspace.deactivate_rule(ref)
        assert workspace.tuples("d") == set()
        assert ref not in workspace.active_refs()


class TestActivationLoop:
    def test_derived_activation(self):
        """Deriving active(R) activates R — code generation (section 3.3)."""
        workspace = Workspace("w")
        workspace.load("""
            trigger("go").
            active([| generated("yes"). |]) <- trigger("go").
        """)
        assert workspace.tuples("generated") == {("yes",)}

    def test_chained_generation(self):
        workspace = Workspace("w")
        workspace.load("""
            seed(3).
            active([| countdown(N). |]) <- seed(N).
            active([| countdown(N-1). |]) <- countdown(N), N > 0.
        """)
        assert workspace.tuples("countdown") == {(3,), (2,), (1,), (0,)}

    def test_runaway_generation_capped(self):
        workspace = Workspace("w", max_activation_rounds=20)
        with pytest.raises(ActivationLimitError):
            workspace.load("""
                up(0).
                active([| up(N+1). |]) <- up(N).
            """)

    def test_deactivation_of_generator_removes_generated(self):
        workspace = Workspace("w")
        ref = workspace.add_rule('active([| gen("a"). |]) <- on().')
        workspace.assert_fact("on", ())
        assert workspace.tuples("gen") == {("a",)}
        workspace.retract_fact("on", ())
        assert workspace.tuples("gen") == set()


class TestPartitionedPredicates:
    def test_partitioned_storage_flattens_keys(self):
        workspace = Workspace("w")
        workspace.load('''
            prin("w"). prin("bob").
            exp0: export[U1](U2,R) -> prin(U1), prin(U2), string(R).
            export[U](me,R) <- outbox(U,R).
        ''')
        workspace.assert_fact("outbox", ("bob", "msg"))
        assert workspace.tuples("export") == {("bob", "w", "msg")}
        info = workspace.catalog.get("export")
        assert info.key_arity == 1 and info.arity == 3
